"""Command-line runner for the paper experiments.

Usage::

    python -m repro table1 --scale 0.25 --seeds 0,1,2
    python -m repro fig7a --jobs 4
    python -m repro all --scale 0.1 --seeds 0 --cache-dir /tmp/repro
    python -m repro fig8 --seeds 0 --trace-out traces/
    python -m repro report traces/ --chrome-out traces/job.chrome.json
    python -m repro bench --quick
    python -m repro lint --format json

Each experiment prints the table/series of its paper artifact plus its
PASS/FAIL shape checks.  Simulations fan out over ``--jobs`` worker
processes and are memoised in a content-addressed on-disk cache, so
re-running an experiment with the same configuration replays results
without simulating (``--no-cache`` disables the disk cache).

``--trace-out DIR`` records every simulated run's trace to
``DIR/<run>.trace.jsonl`` (plus a metrics snapshot); ``repro report``
renders those artifacts — per-phase durations, per-device I/O, a phase
timeline — and can re-export them as a Chrome/Perfetto trace.

``repro bench`` times the canonical scenarios against their golden
payload digests and writes ``BENCH_<rev>.json`` (see :mod:`repro.bench`).

``repro lint`` statically checks the source tree against the
reproducibility contract — no wall clock or stray RNG in the simulation
path, trace topics registered, cache keys pure (see
:mod:`repro.analysis`).  Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time
from typing import List, Optional, Set

from .api import DEFAULT_SCALE, validate_scale
from .experiments import EXPERIMENTS
from .faults import PRESETS
from .mapreduce.multijob import JOB_SCHEDULERS
from .obs import capture
from .obs.metrics import merge_snapshots
from .obs.report import report_path
from .runner import DEFAULT_CACHE_DIR, RunSpec, SweepRunner, default_jobs

__all__ = ["main"]


def _parse_seeds(raw: str) -> tuple:
    try:
        seeds = tuple(int(s) for s in raw.split(",") if s != "")
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list {raw!r}") from None
    if not seeds:
        raise argparse.ArgumentTypeError(
            f"seed list {raw!r} is empty; give at least one seed, e.g. "
            "--seeds 0 or --seeds 0,1,2"
        )
    return seeds


def _parse_scale(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a float, got {raw!r}") from None
    try:
        return validate_scale(value, source="--scale")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_jobs(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an int, got {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {value}")
    return value


def _parse_topics(raw: str) -> tuple:
    topics = tuple(t.strip() for t in raw.split(",") if t.strip())
    if not topics:
        raise argparse.ArgumentTypeError(
            f"topic list {raw!r} is empty; give topics or globs, e.g. "
            "--trace-topics 'disk.*,job.*' (default: '*')"
        )
    return topics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures in simulation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=DEFAULT_SCALE,
        help="data-size scale factor in (0, 1] (1.0 = paper-exact sizes; "
        f"default {DEFAULT_SCALE} or $REPRO_SCALE)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(0,),
        help="comma-separated seeds to average over (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help="simulation worker processes "
        "(default: $REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (in-process memoisation stays on)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress and timing output (tables and checks only)",
    )
    parser.add_argument(
        "--faults",
        choices=sorted(PRESETS),
        default=None,
        help="fault-injection preset for experiments that support it "
        "(currently fig9-faults; other figures stay fault-free by "
        "construction)",
    )
    parser.add_argument(
        "--arrivals",
        type=_parse_jobs,
        default=None,
        metavar="N",
        help="number of jobs in the arrival stream, for experiments that "
        "take one (currently fig-multijob; default 4)",
    )
    parser.add_argument(
        "--scheduler",
        choices=sorted(JOB_SCHEDULERS),
        default=None,
        help="restrict multi-job experiments to one job-level scheduler "
        "(default: compare fifo/fair/sjf)",
    )
    parser.add_argument(
        "--tenants",
        type=_parse_jobs,
        default=None,
        metavar="N",
        help="number of tenants sharing the cluster in multi-job "
        "experiments (default 2)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="record each simulated run's trace to DIR/<run>.trace.jsonl "
        "plus a metrics snapshot; implies fresh simulation (the result "
        "cache is bypassed so every run actually traces)",
    )
    parser.add_argument(
        "--trace-topics",
        type=_parse_topics,
        default=("*",),
        metavar="TOPICS",
        help="comma-separated trace topics or globs to record with "
        "--trace-out, e.g. 'disk.*,job.*' (default: '*')",
    )
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a metrics summary and phase timeline from "
        "trace artifacts recorded with --trace-out.",
    )
    parser.add_argument(
        "trace",
        help="a .trace.jsonl file, or a directory of them (reported in "
        "name order)",
    )
    parser.add_argument(
        "--chrome-out",
        metavar="PATH",
        default=None,
        help="also export all records as Chrome trace-event JSON "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    return parser


def _attach_obs_snapshot(result, out_dir: str, files_before: Set[str]) -> None:
    """Fold this experiment's capture artifacts into its result payload.

    Behind the --trace-out flag by construction: without capture the
    payload carries no ``obs`` key at all, keeping rendered output and
    cached run payloads bit-identical to the pre-observability ones.
    """
    try:
        names = set(os.listdir(out_dir))
    except OSError:
        return
    fresh = sorted(names - files_before)
    snapshots = []
    for name in fresh:
        if not name.endswith(".metrics.json"):
            continue
        try:
            with open(os.path.join(out_dir, name), encoding="utf-8") as fh:
                snapshots.append(json.load(fh))
        except (OSError, ValueError):
            continue
    result.data["obs"] = {
        "trace_files": [n for n in fresh if n.endswith(".trace.jsonl")],
        "metrics": merge_snapshots(snapshots),
    }


def run_one(exp_id: str, sweep: SweepRunner, scale: float, seeds: tuple,
            quiet: bool = False, faults: Optional[str] = None,
            trace_out: Optional[str] = None,
            arrivals: Optional[int] = None, scheduler: Optional[str] = None,
            tenants: Optional[int] = None) -> bool:
    start = time.time()
    before = sweep.stats.snapshot()
    files_before: Set[str] = set()
    if trace_out is not None and os.path.isdir(trace_out):
        files_before = set(os.listdir(trace_out))
    fn = EXPERIMENTS[exp_id]
    params = inspect.signature(fn).parameters
    kwargs = dict(scale=scale, seeds=seeds, sweep=sweep)
    if faults is not None:
        if "faults" not in params:
            print(
                f"repro: note: {exp_id} does not take faults; "
                "--faults ignored (the figure is fault-free by construction)",
                file=sys.stderr,
            )
        else:
            kwargs["faults"] = faults
    for flag, value in (("arrivals", arrivals), ("scheduler", scheduler),
                        ("tenants", tenants)):
        if value is None:
            continue
        if flag not in params:
            print(
                f"repro: note: {exp_id} does not take {flag}; "
                f"--{flag} ignored (it runs a single job by construction)",
                file=sys.stderr,
            )
        else:
            kwargs[flag] = value
    result = fn(**kwargs)
    if trace_out is not None:
        _attach_obs_snapshot(result, trace_out, files_before)
    rendered = result.render()
    delta = sweep.stats.since(before)
    print(rendered)
    if not quiet:
        print(f"(elapsed {time.time() - start:.1f}s; {delta.summary()})")
    print()
    return result.all_checks_pass


def run_report(argv: List[str]) -> int:
    args = build_report_parser().parse_args(argv)
    try:
        print(report_path(args.trace, chrome_out=args.chrome_out))
    except FileNotFoundError as exc:
        print(f"repro report: error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        return run_report(argv[1:])
    if argv and argv[0] == "bench":
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    def progress(spec: RunSpec, seconds: float) -> None:
        name = spec.label or f"{spec.kind} seed={spec.seed}"
        print(f"  ran {name} ({seconds:.1f}s)", file=sys.stderr)

    tracing = args.trace_out is not None
    use_cache = not args.no_cache and not tracing
    if tracing and not args.no_cache and not args.quiet:
        print(
            "repro: note: --trace-out bypasses the result cache so every "
            "run is simulated (and traced) fresh",
            file=sys.stderr,
        )
    try:
        sweep = SweepRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=use_cache,
            progress=None if args.quiet else progress,
        )
    except ValueError as exc:  # e.g. a garbage $REPRO_JOBS value
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    if tracing:
        os.makedirs(args.trace_out, exist_ok=True)
        capture.enable(args.trace_out, args.trace_topics)
    ok = True
    try:
        with sweep:
            for exp_id in ids:
                ok = run_one(exp_id, sweep, args.scale, args.seeds,
                             quiet=args.quiet, faults=args.faults,
                             trace_out=args.trace_out,
                             arrivals=args.arrivals,
                             scheduler=args.scheduler,
                             tenants=args.tenants) and ok
            if not args.quiet:
                print(sweep.profile_summary(), file=sys.stderr)
    finally:
        if tracing:
            capture.disable()
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
