"""Canonical benchmark scenarios: what ``repro bench`` times.

Each scenario is a fixed list of :class:`~repro.runner.spec.RunSpec`s
with every size parameter explicit (``$REPRO_SCALE`` cannot move them),
a *golden digest* of the canonical-JSON payloads — the harness refuses
to report a timing whose results drifted — and the pre-optimisation
baseline measured on the seed revision, so every ``BENCH_*.json``
carries its own speedup denominator.

The five scenarios cover the simulator's distinct hot paths:

* ``sysbench``      — raw two-level block I/O, no MapReduce (Fig. 1);
* ``fig2_single_pair`` — one sort job under (AS, DL), the per-pair
  profiling unit the paper's sweeps repeat 16×3 times (Fig. 2);
* ``sort``          — the reference sort job at the default 0.25 scale
  (Fig. 8); **the regression-gate scenario**;
* ``faulty_job``    — sort under the LIGHT fault plan (fault machinery
  + speculative re-execution on the hot path, Fig. 9);
* ``scale_sweep``   — an 8-host × 4-VM cluster swept over two scales
  (the "big cluster" shape the ROADMAP wants to grow into);
* ``multijob``      — a Poisson stream of three concurrent sort jobs
  over shared slots (the multi-tenant control-plane hot path);
* ``ssd_sort``      — the fig2-shaped sort job on the FTL-based SSD
  backend (write cache, per-channel NAND queues, fig-ssd).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..api import MultiJobScenario, scaled_cluster, scaled_testbed
from ..core.solution import Solution
from ..faults.presets import LIGHT
from ..runner.spec import RunSpec
from ..virt.pair import DEFAULT_PAIR, SchedulerPair
from ..workloads.profiles import SORT

__all__ = ["Baseline", "BenchScenario", "SCENARIOS", "GATE_SCENARIO"]

MB = 1024 * 1024

#: Revision the pre-PR baselines were measured on.
BASELINE_REV = "acc8be8"

#: The scenario whose events/s ratio is the perf gate.
GATE_SCENARIO = "sort"


@dataclass(frozen=True)
class Baseline:
    """Pre-optimisation measurement (median wall, total events)."""

    wall_s: float
    events: int
    events_per_s: float


@dataclass(frozen=True)
class BenchScenario:
    """One named, digest-pinned timing workload."""

    name: str
    #: Builds the spec list fresh per run (specs hold config objects).
    make_specs: Callable[[], List[RunSpec]]
    #: Timed repetitions (median reported) in full / --quick mode.
    repeats: int
    quick_repeats: int
    #: Warmup runs before timing starts.
    warmup: int
    #: sha256 of the canonical JSON of the payload list; simulation
    #: results must not move when the simulator gets faster.
    expected_digest: str
    baseline: Baseline

    @property
    def in_quick(self) -> bool:
        return self.quick_repeats > 0


def _sysbench() -> List[RunSpec]:
    return [
        RunSpec(
            kind="sysbench",
            seed=0,
            config=(
                scaled_cluster(0.125, hosts=1, vms_per_host=3, seed=0),
                128 * MB, 16, 3,
            ),
            label="bench sysbench",
        )
    ]


def _fig2_single_pair() -> List[RunSpec]:
    return [
        RunSpec(
            kind="job",
            seed=0,
            config=(
                scaled_testbed(SORT, scale=0.125, seeds=(0,)),
                Solution.uniform(SchedulerPair.parse("ad"), 2),
            ),
            label="bench fig2 (AS, DL)",
        )
    ]


def _sort() -> List[RunSpec]:
    return [
        RunSpec(
            kind="job",
            seed=0,
            config=(
                scaled_testbed(SORT, scale=0.25, seeds=(0,)),
                Solution.uniform(DEFAULT_PAIR, 2),
            ),
            label="bench sort",
        )
    ]


def _faulty_job() -> List[RunSpec]:
    return [
        RunSpec(
            kind="faulty_job",
            seed=0,
            config=(
                scaled_testbed(SORT, scale=0.125, hosts=2, vms_per_host=2,
                               seeds=(0,)),
                Solution.uniform(DEFAULT_PAIR, 2),
                LIGHT,
            ),
            label="bench faulty_job",
        )
    ]


def _scale_sweep() -> List[RunSpec]:
    return [
        RunSpec(
            kind="job",
            seed=0,
            config=(
                scaled_testbed(SORT, scale=scale, hosts=8, vms_per_host=4,
                               seeds=(0,)),
                Solution.uniform(DEFAULT_PAIR, 2),
            ),
            label=f"bench scale_sweep {scale}",
        )
        for scale in (0.05, 0.1)
    ]


def _ssd_sort() -> List[RunSpec]:
    return [
        RunSpec(
            kind="job",
            seed=0,
            config=(
                scaled_testbed(SORT, scale=0.125, hosts=2, vms_per_host=2,
                               seeds=(0,), storage="ssd"),
                Solution.uniform(DEFAULT_PAIR, 2),
            ),
            label="bench ssd_sort",
        )
    ]


def _multijob() -> List[RunSpec]:
    return [
        MultiJobScenario(
            workload="sort",
            scale=0.05,
            hosts=2,
            vms_per_host=2,
            scheduler="fifo",
            n_jobs=3,
            arrival_rate=0.2,
            tenants=("tenant-a", "tenant-b"),
            label="bench multijob",
        ).to_spec(seed=0)
    ]


SCENARIOS: Dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            name="sysbench",
            make_specs=_sysbench,
            repeats=5, quick_repeats=3, warmup=1,
            expected_digest=(
                "807588de7f83658619ad156497003d59"
                "414bd87718885651c16f5b98dacf483d"
            ),
            baseline=Baseline(wall_s=0.033869, events=4909,
                              events_per_s=144940.5),
        ),
        BenchScenario(
            name="fig2_single_pair",
            make_specs=_fig2_single_pair,
            repeats=3, quick_repeats=2, warmup=1,
            expected_digest=(
                "6782ee4b657aabb0815958e1d347173f"
                "153e20bb21acd3a8ec0c2d657e9d25ab"
            ),
            baseline=Baseline(wall_s=1.387524, events=108635,
                              events_per_s=78294.1),
        ),
        BenchScenario(
            name="sort",
            make_specs=_sort,
            repeats=5, quick_repeats=3, warmup=1,
            expected_digest=(
                "7ddef559088cb6d537f2f842fa8a4768"
                "4a107a3cd8710e473471e754059658ef"
            ),
            baseline=Baseline(wall_s=2.553349, events=184930,
                              events_per_s=72426.5),
        ),
        BenchScenario(
            name="faulty_job",
            make_specs=_faulty_job,
            repeats=3, quick_repeats=2, warmup=1,
            expected_digest=(
                "4c76ebed07454d3e3494b3baedf149a4"
                "aac941eca5d928e51d33f6d357c478eb"
            ),
            baseline=Baseline(wall_s=0.262164, events=22249,
                              events_per_s=84866.6),
        ),
        # Big-cluster sweep: heavy (≈10 s per rep at the baseline), so
        # it only runs in full mode; --quick skips it.
        BenchScenario(
            name="scale_sweep",
            make_specs=_scale_sweep,
            repeats=3, quick_repeats=0, warmup=0,
            # Digest updated when partition extents became exact (the
            # shuffle partition_bytes fix): at scales 0.05/0.1 the block
            # size is not a multiple of the reducer count, so per-reducer
            # fetch sizes legitimately shifted.  The four power-of-two
            # scenarios above were bit-unchanged by that fix.
            expected_digest=(
                "c06656eeb5b563a428941a9148fd4c92"
                "9786c545dc6697f3769b38584c319f04"
            ),
            baseline=Baseline(wall_s=11.430678, events=462894,
                              events_per_s=40495.8),
        ),
        # FTL hot path: the fig2-shaped sort job on the SSD backend —
        # write-cache admission, per-channel NAND queues, delayed
        # writeback.  New in the storage-backend PR, so its baseline is
        # the first measurement on that revision.
        BenchScenario(
            name="ssd_sort",
            make_specs=_ssd_sort,
            repeats=3, quick_repeats=2, warmup=1,
            expected_digest=(
                "1baaf7e573eee7d9963ae304753c16a5"
                "1955b0c471d5c8776052039de979ab42"
            ),
            baseline=Baseline(wall_s=1.801492, events=491561,
                              events_per_s=272863.3),
        ),
        # Multi-tenant control plane: three overlapping sort jobs on a
        # 2x2 cluster under FIFO.  New in the multi-job PR, so its
        # baseline is the first measurement on that revision.
        BenchScenario(
            name="multijob",
            make_specs=_multijob,
            repeats=3, quick_repeats=2, warmup=1,
            expected_digest=(
                "61760cb1a9cbc7773a7b31b38ec707ec"
                "af828956fa5870dda612926741f4c163"
            ),
            baseline=Baseline(wall_s=0.356022, events=45156,
                              events_per_s=126834.7),
        ),
    )
}
