"""The timing harness behind ``repro bench``.

For each scenario the harness runs ``warmup`` untimed executions, then
``repeats`` timed ones (reporting the median wall time), then one final
*audited* pass that counts simulation events with the kernel's event
census and digests the canonical-JSON payloads.  A digest that differs
from the scenario's golden digest is a hard failure — a speedup that
changes results is a bug, not a speedup.

Results land in ``BENCH_<rev>.json`` at the repository root::

    {
      "rev": "1a2b3c4",
      "version": "1.2.0",
      "mode": "quick" | "full",
      "baseline_rev": "acc8be8",
      "scenarios": {
        "<name>": {
          "events": 184930,          # per audited pass (deterministic)
          "wall_s": 1.497,           # median of the timed repeats
          "events_per_s": 123466.0,
          "rss_mb": 138.2,           # ru_maxrss after the scenario
          "walls": [...],            # every timed repeat
          "digest": "…",             # == golden, or the run failed
          "baseline": {"wall_s": …, "events": …, "events_per_s": …},
          "speedup": 1.70            # events_per_s vs baseline
        }, ...
      }
    }

``--profile NAME`` instead runs one scenario under :mod:`cProfile` and
prints the top of the cumulative-time table — the loop used to find the
hot paths this harness guards.
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import os
import pstats
import resource
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..runner.kinds import execute_spec
from ..sim.core import finish_event_census, start_event_census
from .scenarios import BASELINE_REV, GATE_SCENARIO, SCENARIOS, BenchScenario

__all__ = [
    "BenchError",
    "ScenarioTiming",
    "bench_payload_digest",
    "main",
    "run_scenario",
    "run_trace_overhead",
    "write_bench_file",
]


class BenchError(RuntimeError):
    """A scenario produced results that differ from its golden digest."""


def bench_payload_digest(payloads: List[Any]) -> str:
    """sha256 over the canonical JSON of a scenario's payload list."""
    blob = json.dumps(payloads, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class ScenarioTiming:
    """One scenario's measured numbers (see the module docstring)."""

    name: str
    events: int
    wall_s: float
    events_per_s: float
    rss_mb: float
    walls: List[float] = field(default_factory=list)
    digest: str = ""
    speedup: float = 0.0

    def to_json(self, scenario: BenchScenario) -> Dict[str, Any]:
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_s": round(self.events_per_s, 1),
            "rss_mb": round(self.rss_mb, 1),
            "walls": [round(w, 6) for w in self.walls],
            "digest": self.digest,
            "baseline": {
                "wall_s": scenario.baseline.wall_s,
                "events": scenario.baseline.events,
                "events_per_s": scenario.baseline.events_per_s,
            },
            "speedup": round(self.speedup, 3),
        }


def _rss_mb() -> float:
    # ru_maxrss is KiB on Linux (bytes on macOS; close enough for a
    # trend line — CI runs Linux).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_once(scenario: BenchScenario) -> List[Any]:
    # The same JSON round-trip the sweep runner applies, so the digest
    # covers exactly the bytes a cache hit would return.
    return [
        json.loads(json.dumps(execute_spec(spec), sort_keys=True))
        for spec in scenario.make_specs()
    ]


def _median(walls: List[float]) -> float:
    walls = sorted(walls)
    mid = len(walls) // 2
    if len(walls) % 2:
        return walls[mid]
    return (walls[mid - 1] + walls[mid]) / 2


def run_scenario(scenario: BenchScenario, repeats: Optional[int] = None,
                 quick: bool = False) -> ScenarioTiming:
    """Time one scenario; raises :class:`BenchError` on digest drift."""
    if repeats is None:
        repeats = scenario.quick_repeats if quick else scenario.repeats
    if repeats < 1:
        raise ValueError(f"{scenario.name}: repeats must be >= 1")

    for _ in range(scenario.warmup):
        _run_once(scenario)

    walls: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for spec in scenario.make_specs():
            execute_spec(spec)
        walls.append(time.perf_counter() - t0)

    # Audited pass: census the event count and digest the payloads.
    # Runs are deterministic, so this pass's events and digest stand
    # for every timed pass above.
    start_event_census()
    payloads = _run_once(scenario)
    events = finish_event_census()
    digest = bench_payload_digest(payloads)
    if digest != scenario.expected_digest:
        raise BenchError(
            f"{scenario.name}: payload digest drifted\n"
            f"  expected {scenario.expected_digest}\n"
            f"  got      {digest}\n"
            "Simulation results changed; either a bit-identity "
            "regression or an intentional behaviour change that must "
            "update the golden digest in repro/bench/scenarios.py."
        )

    wall_s = _median(walls)
    events_per_s = events / wall_s if wall_s > 0 else 0.0
    return ScenarioTiming(
        name=scenario.name,
        events=events,
        wall_s=wall_s,
        events_per_s=events_per_s,
        rss_mb=_rss_mb(),
        walls=walls,
        digest=digest,
        speedup=events_per_s / scenario.baseline.events_per_s,
    )


def run_trace_overhead(scenario: BenchScenario,
                       repeats: int = 3) -> Dict[str, Any]:
    """Throughput with tracing off vs on (all topics, streamed to disk).

    Runs the scenario ``repeats`` timed passes untraced and again under
    an active capture (full topic set, artifacts streamed to a
    throwaway directory), auditing the payload digest on both sides —
    tracing that *changes results* is a correctness bug, not overhead.
    Returns the measured numbers; ``traced_ratio`` is traced events/s
    over untraced events/s (1.0 = free, 0.5 = tracing halved
    throughput).
    """
    import tempfile

    from ..obs import capture

    if capture.config_from_env() is not None:
        raise BenchError(
            f"{scenario.name}: capture is already enabled; the overhead "
            "probe needs an untraced baseline (unset REPRO_TRACE_OUT)"
        )

    def timed_walls() -> List[float]:
        walls = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for spec in scenario.make_specs():
                execute_spec(spec)
            walls.append(time.perf_counter() - t0)
        return walls

    for _ in range(scenario.warmup):
        _run_once(scenario)
    plain_wall = _median(timed_walls())
    start_event_census()
    plain_digest = bench_payload_digest(_run_once(scenario))
    events = finish_event_census()
    if plain_digest != scenario.expected_digest:
        raise BenchError(
            f"{scenario.name}: untraced payload digest drifted\n"
            f"  expected {scenario.expected_digest}\n"
            f"  got      {plain_digest}"
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        capture.enable(tmp)
        try:
            traced_wall = _median(timed_walls())
            traced_digest = bench_payload_digest(_run_once(scenario))
        finally:
            capture.disable()
    if traced_digest != scenario.expected_digest:
        raise BenchError(
            f"{scenario.name}: tracing changed the payloads\n"
            f"  expected {scenario.expected_digest}\n"
            f"  got      {traced_digest}\n"
            "Capture must be a pure side channel; a traced run that "
            "produces different results breaks the bit-identity contract."
        )

    untraced_eps = events / plain_wall if plain_wall > 0 else 0.0
    traced_eps = events / traced_wall if traced_wall > 0 else 0.0
    return {
        "scenario": scenario.name,
        "events": events,
        "untraced_wall_s": plain_wall,
        "traced_wall_s": traced_wall,
        "untraced_events_per_s": untraced_eps,
        "traced_events_per_s": traced_eps,
        "traced_ratio": traced_eps / untraced_eps if untraced_eps else 0.0,
    }


# -- output ---------------------------------------------------------------------------


def _repo_root() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        if out:
            return out
    except (OSError, subprocess.CalledProcessError):
        pass
    return os.getcwd()


def _rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        if out:
            return out
    except (OSError, subprocess.CalledProcessError):
        pass
    return "worktree"


def write_bench_file(timings: List[ScenarioTiming], mode: str,
                     out: Optional[str] = None) -> str:
    """Write ``BENCH_<rev>.json``; returns the path written."""
    from .. import __version__

    if out is None:
        out = os.path.join(_repo_root(), f"BENCH_{_rev()}.json")
    doc = {
        "rev": _rev(),
        "version": __version__,
        "mode": mode,
        "baseline_rev": BASELINE_REV,
        "scenarios": {
            t.name: t.to_json(SCENARIOS[t.name]) for t in timings
        },
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return out


def _profile_scenario(scenario: BenchScenario, lines: int = 30) -> None:
    profiler = cProfile.Profile()
    profiler.enable()
    _run_once(scenario)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(lines)


# -- CLI ------------------------------------------------------------------------------


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the canonical scenarios and write BENCH_<rev>.json "
        "(golden payload digests are enforced: a timing run whose results "
        "drift fails).",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help=f"subset to run (default: all; quick mode skips heavy ones); "
        f"known: {', '.join(sorted(SCENARIOS))}",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced repeats and no heavy scenarios (for PR CI)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="override the per-scenario repeat count",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON here instead of BENCH_<rev>.json at the "
        "repo root",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        metavar="RATIO",
        help=f"fail unless the {GATE_SCENARIO} scenario's events/s is at "
        "least RATIO x its recorded baseline (machine-dependent; only "
        "meaningful where the baseline was measured)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="SCENARIO",
        help="run one scenario under cProfile and print the cumulative-"
        "time table instead of benchmarking",
    )
    parser.add_argument(
        "--trace-overhead",
        type=float,
        default=None,
        metavar="RATIO",
        help=f"instead of benchmarking, measure tracing overhead on the "
        f"selected scenarios (default {GATE_SCENARIO}): fail unless "
        "traced events/s stays at least RATIO x untraced (payload "
        "digests are audited on both sides)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_bench_parser().parse_args(argv)

    if args.profile is not None:
        scenario = SCENARIOS.get(args.profile)
        if scenario is None:
            print(f"repro bench: unknown scenario {args.profile!r} "
                  f"(known: {', '.join(sorted(SCENARIOS))})",
                  file=sys.stderr)
            return 2
        _profile_scenario(scenario)
        return 0

    if args.trace_overhead is not None:
        names = args.scenarios or [GATE_SCENARIO]
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            print(f"repro bench: unknown scenario(s) {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
            return 2
        ok = True
        for name in names:
            print(f"  trace-overhead {name}...", file=sys.stderr)
            try:
                probe = run_trace_overhead(SCENARIOS[name])
            except BenchError as exc:
                print(f"repro bench: FAIL: {exc}", file=sys.stderr)
                return 1
            print(
                f"    untraced {probe['untraced_events_per_s']:>9.0f} ev/s  "
                f"traced {probe['traced_events_per_s']:>9.0f} ev/s  "
                f"ratio x{probe['traced_ratio']:.2f}",
                file=sys.stderr,
            )
            if probe["traced_ratio"] < args.trace_overhead:
                print(
                    f"repro bench: FAIL: {name} traced throughput at "
                    f"x{probe['traced_ratio']:.2f} of untraced, below the "
                    f"x{args.trace_overhead:.2f} bound",
                    file=sys.stderr,
                )
                ok = False
        if ok:
            print(f"repro bench: trace overhead ok "
                  f"(bound x{args.trace_overhead:.2f})", file=sys.stderr)
        return 0 if ok else 1

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"repro bench: unknown scenario(s) {', '.join(unknown)} "
              f"(known: {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
        return 2
    selected = [SCENARIOS[n] for n in names]
    if args.quick and not args.scenarios:
        selected = [s for s in selected if s.in_quick]

    timings: List[ScenarioTiming] = []
    for scenario in selected:
        print(f"  bench {scenario.name}...", file=sys.stderr)
        try:
            timing = run_scenario(scenario, repeats=args.repeats,
                                  quick=args.quick)
        except BenchError as exc:
            print(f"repro bench: FAIL: {exc}", file=sys.stderr)
            return 1
        timings.append(timing)
        print(
            f"    {timing.wall_s:8.3f}s  {timing.events:>8d} events  "
            f"{timing.events_per_s:>9.0f} ev/s  "
            f"x{timing.speedup:.2f} vs baseline",
            file=sys.stderr,
        )

    path = write_bench_file(timings, mode="quick" if args.quick else "full",
                            out=args.out)
    print(path)

    if args.gate is not None:
        gate = next((t for t in timings if t.name == GATE_SCENARIO), None)
        if gate is None:
            print(f"repro bench: --gate needs the {GATE_SCENARIO} scenario "
                  "in the selection", file=sys.stderr)
            return 2
        if gate.speedup < args.gate:
            print(
                f"repro bench: FAIL: {GATE_SCENARIO} at "
                f"x{gate.speedup:.2f} vs baseline, below the "
                f"x{args.gate:.2f} gate",
                file=sys.stderr,
            )
            return 1
        print(f"repro bench: gate ok ({GATE_SCENARIO} "
              f"x{gate.speedup:.2f} >= x{args.gate:.2f})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - module runner
    sys.exit(main())
