"""``repro.bench`` — the performance harness and its canonical scenarios.

``repro bench`` (CLI) or :func:`repro.bench.main` times digest-pinned
scenarios and writes ``BENCH_<rev>.json`` at the repo root; see
:mod:`repro.bench.harness` for the schema and :mod:`repro.bench.scenarios`
for the workload definitions and golden digests.
"""

from .harness import (
    BenchError,
    ScenarioTiming,
    bench_payload_digest,
    main,
    run_scenario,
    write_bench_file,
)
from .scenarios import GATE_SCENARIO, SCENARIOS, Baseline, BenchScenario

__all__ = [
    "Baseline",
    "BenchError",
    "BenchScenario",
    "GATE_SCENARIO",
    "SCENARIOS",
    "ScenarioTiming",
    "bench_payload_digest",
    "main",
    "run_scenario",
    "write_bench_file",
]
