"""The NameNode: namespace and block placement.

Placement follows Hadoop 0.19 with replication 2: first replica on the
writer's node, second on a node chosen off the writer's *physical host*
when possible (rack-awareness degenerates to host-awareness in a
virtual cluster — two replicas inside one physical machine would share
a spindle and defeat the purpose).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..sim.rng import fallback_rng
from .blocks import DEFAULT_BLOCK_SIZE, DEFAULT_REPLICATION, HdfsBlock, HdfsFile

if TYPE_CHECKING:  # pragma: no cover
    from ..virt.cluster import VirtualCluster
    from ..virt.vm import VM

__all__ = ["NameNode"]


class NameNode:
    """Namespace plus placement policy over a virtual cluster."""

    def __init__(
        self,
        cluster: "VirtualCluster",
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
        rng: Optional[np.random.Generator] = None,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.cluster = cluster
        self.block_size = block_size
        self.replication = min(replication, len(cluster.vms))
        self.rng = rng or fallback_rng()
        self._files: Dict[str, HdfsFile] = {}

    # -- namespace ---------------------------------------------------------------
    def lookup(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        file = self._files.pop(path, None)
        if file is None:
            raise FileNotFoundError(path)
        for block in file.blocks:
            for vm_id in block.replicas:
                vm = self.cluster.vm(vm_id)
                name = block.local_name(vm_id)
                if vm.fs.lookup(name) is not None:
                    vm.fs.delete(name)

    # -- placement ----------------------------------------------------------------
    def place_replicas(self, writer_vm: str) -> List[str]:
        """Choose replica VMs for one block written by ``writer_vm``."""
        chosen = [writer_vm]
        writer_host = self.cluster.vm(writer_vm).host_name
        candidates = [
            vm.vm_id
            for vm in self.cluster.vms
            if vm.vm_id != writer_vm and vm.host_name != writer_host
        ]
        if not candidates:  # single-host cluster: fall back to other VMs
            candidates = [
                vm.vm_id for vm in self.cluster.vms if vm.vm_id != writer_vm
            ]
        self.rng.shuffle(candidates)
        chosen.extend(candidates[: self.replication - 1])
        return chosen

    def register_file(self, path: str) -> HdfsFile:
        """Create an empty file entry (blocks appended by the writer)."""
        if path in self._files:
            raise FileExistsError(path)
        file = HdfsFile(path=path)
        self._files[path] = file
        return file

    def add_block(self, file: HdfsFile, size_bytes: int, writer_vm: str) -> HdfsBlock:
        """Allocate a new block of ``size_bytes`` for ``file``."""
        block = HdfsBlock(
            path=file.path,
            index=len(file.blocks),
            size_bytes=size_bytes,
            replicas=self.place_replicas(writer_vm),
        )
        file.blocks.append(block)
        return block

    # -- bulk input loading -----------------------------------------------------------
    def load_input(self, path: str, bytes_per_vm: int) -> HdfsFile:
        """Materialise an input dataset already resident on disk.

        Every VM receives ``bytes_per_vm`` of blocks with the primary
        replica local (the balanced, data-local layout the paper fixes:
        "each data node processes 512 MB").  Guest files are allocated
        directly — the data predates the experiment, so no simulated
        I/O happens here and caches stay cold.
        """
        if bytes_per_vm <= 0:
            raise ValueError("bytes_per_vm must be positive")
        file = self.register_file(path)
        for vm in self.cluster.vms:
            remaining = bytes_per_vm
            while remaining > 0:
                size = min(self.block_size, remaining)
                block = self.add_block(file, size, vm.vm_id)
                for vm_id in block.replicas:
                    replica_vm = self.cluster.vm(vm_id)
                    replica_vm.fs.create_or_replace(
                        block.local_name(vm_id), size
                    )
                remaining -= size
        return file

    def local_blocks(self, path: str, vm_id: str) -> List[HdfsBlock]:
        """Blocks of ``path`` whose primary replica lives on ``vm_id``."""
        return [b for b in self.lookup(path).blocks if b.replicas[0] == vm_id]
