"""HDFS substrate: namespace, block placement, replicated I/O."""

from .blocks import DEFAULT_BLOCK_SIZE, DEFAULT_REPLICATION, HdfsBlock, HdfsFile
from .datanode import DataNodeService
from .namenode import NameNode

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_REPLICATION",
    "DataNodeService",
    "HdfsBlock",
    "HdfsFile",
    "NameNode",
]
