"""HDFS block metadata."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

__all__ = ["HdfsBlock", "HdfsFile", "DEFAULT_BLOCK_SIZE", "DEFAULT_REPLICATION"]

#: Hadoop 0.19's default dfs.block.size.
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024
#: The paper stores two replicas per chunk.
DEFAULT_REPLICATION = 2

_block_counter = itertools.count(1)


def reset_block_ids() -> None:
    """Restart block numbering at 1 (names are labels; placement and
    layout follow allocation order), keeping guest-file names in traces
    identical across same-seed runs in one process."""
    global _block_counter
    _block_counter = itertools.count(1)


@dataclass
class HdfsBlock:
    """One block: its size and the VMs holding replicas.

    ``replicas[0]`` is the primary (usually local to the writer); the
    guest-file name for a replica on VM ``v`` is ``local_name(v)``.
    """

    path: str
    index: int
    size_bytes: int
    replicas: List[str] = field(default_factory=list)
    block_id: int = field(default_factory=lambda: next(_block_counter))

    def local_name(self, vm_id: str) -> str:
        return f"blk_{self.block_id}@{vm_id}"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("block size must be positive")


@dataclass
class HdfsFile:
    """An HDFS file: an ordered list of blocks."""

    path: str
    blocks: List[HdfsBlock] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)
