"""DataNode I/O paths: block reads and the replication write pipeline."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..sim.events import AllOf
from .blocks import HdfsBlock

if TYPE_CHECKING:  # pragma: no cover
    from ..net.topology import Topology
    from ..sim.core import Environment
    from ..virt.cluster import VirtualCluster

__all__ = ["DataNodeService"]

#: HDFS streams blocks in 64 KB packets; we batch them into larger
#: pipeline segments to keep the event count sane.
PIPELINE_SEGMENT = 4 * 1024 * 1024


class DataNodeService:
    """Cluster-wide helper implementing block read/write as generators.

    There is one logical DataNode per VM; this object routes an
    operation to the right VM's filesystem/page cache and the network.
    """

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        topology: "Topology",
        segment_bytes: int = PIPELINE_SEGMENT,
    ):
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.env = env
        self.cluster = cluster
        self.topology = topology
        self.segment_bytes = segment_bytes

    # -- reads ------------------------------------------------------------------
    def pick_replica(self, block: HdfsBlock, reader_vm: str) -> str:
        """Closest replica: same VM, then same host, then first."""
        if reader_vm in block.replicas:
            return reader_vm
        reader_host = self.cluster.vm(reader_vm).host_name
        for vm_id in block.replicas:
            if self.cluster.vm(vm_id).host_name == reader_host:
                return vm_id
        return block.replicas[0]

    def read_block(self, block: HdfsBlock, reader_vm: str, pid: Any,
                   offset: int = 0, length: Optional[int] = None):
        """Generator: stream (part of) a block to ``reader_vm``.

        Local replica → straight disk read.  Remote replica → the
        serving VM reads from its disk and the bytes cross the network,
        pipelined per segment.
        """
        if length is None:
            length = block.size_bytes - offset
        if length <= 0:
            return
        src_vm_id = self.pick_replica(block, reader_vm)
        src_vm = self.cluster.vm(src_vm_id)
        file = src_vm.fs.lookup(block.local_name(src_vm_id))
        if file is None:
            raise FileNotFoundError(
                f"replica of {block.path}#{block.index} missing on {src_vm_id}"
            )
        if src_vm_id == reader_vm:
            yield from src_vm.read_file(file, offset, length, pid)
            return
        reader_host = self.cluster.vm(reader_vm).host_name
        pos = offset
        end = offset + length
        while pos < end:
            seg = min(self.segment_bytes, end - pos)
            yield from src_vm.read_file(file, pos, seg, f"dn@{src_vm_id}")
            yield self.topology.transfer(
                src_vm.host_name, reader_host, seg,
                label=f"hdfs-read {block.path}#{block.index}",
            )
            pos += seg

    # -- writes -------------------------------------------------------------------
    def write_block(self, block: HdfsBlock, writer_vm: str, pid: Any):
        """Generator: write a block through the replication pipeline.

        Segment by segment, the primary replica absorbs a buffered local
        write while the same bytes stream to each downstream replica and
        are buffered there — local disk write and network transfer
        overlap, like the real packet pipeline.  Buffered writes mean
        the call returns when the page caches have the data (HDFS 0.19
        does not fsync on close); writeback makes it durable later and
        competes with the rest of the job, as on the testbed.
        """
        files = {}
        for vm_id in block.replicas:
            vm = self.cluster.vm(vm_id)
            files[vm_id] = vm.fs.create_or_replace(
                block.local_name(vm_id), block.size_bytes
            )
        writer_host = self.cluster.vm(writer_vm).host_name
        pos = 0
        while pos < block.size_bytes:
            seg = min(self.segment_bytes, block.size_bytes - pos)
            events = []
            primary = block.replicas[0]
            events.append(
                self.env.process(
                    self.cluster.vm(primary).write_file(
                        files[primary], pos, seg, pid
                    )
                )
            )
            for vm_id in block.replicas[1:]:
                events.append(
                    self.env.process(
                        self._forward_segment(
                            writer_host, vm_id, files[vm_id], pos, seg
                        )
                    )
                )
            yield AllOf(self.env, events)
            pos += seg

    def _forward_segment(self, src_host: str, dst_vm_id: str, file, pos: int,
                         seg: int):
        dst_vm = self.cluster.vm(dst_vm_id)
        yield self.topology.transfer(
            src_host, dst_vm.host_name, seg, label=f"hdfs-pipe {file.name}"
        )
        yield from dst_vm.write_file(file, pos, seg, f"dn@{dst_vm_id}")
