"""The paper's contribution: adaptive disk-pair scheduling for MapReduce.

Public surface::

    config = TestbedConfig(cluster=ClusterConfig(), job=JobConfig(spec=SORT))
    meta = AdaptiveMetaScheduler(config)
    report = meta.report()
    print(report.summary())
"""

from .bruteforce import BruteForceSearch, enumerate_solutions
from .chains import ChainConfig, ChainOutcome, ChainRunner
from .finegrained import FineGrainedAssignment, FineGrainedPlan, apply_assignment
from .experiment import JobRunner, RunOutcome, TestbedConfig
from .heuristic import (
    HeuristicSearch,
    ProfiledScores,
    SearchResult,
    profile_single_pairs,
)
from .metasched import AdaptiveMetaScheduler, AdaptiveReport
from .online import OnlineController, OnlinePolicy, Regime
from .phase_detect import DetectorParams, PhaseDetector, ResourceSample
from .solution import Solution
from .switch_cost import SwitchCostMatrix, SwitchCostMeter, SwitchCostModel

__all__ = [
    "AdaptiveMetaScheduler",
    "AdaptiveReport",
    "BruteForceSearch",
    "ChainConfig",
    "ChainOutcome",
    "ChainRunner",
    "FineGrainedAssignment",
    "FineGrainedPlan",
    "DetectorParams",
    "OnlineController",
    "OnlinePolicy",
    "PhaseDetector",
    "ResourceSample",
    "Regime",
    "apply_assignment",
    "HeuristicSearch",
    "JobRunner",
    "ProfiledScores",
    "RunOutcome",
    "SearchResult",
    "Solution",
    "SwitchCostMatrix",
    "SwitchCostMeter",
    "SwitchCostModel",
    "TestbedConfig",
    "enumerate_solutions",
    "profile_single_pairs",
]
