"""Phase detection from observed resource utilisation (paper §IV-A).

The paper reduces the profiled space of a MapReduce program to a
*resource-utilisation space* with four classes:

* computation — job start until the first map output reaches disk;
* computation + disk + network — maps running (Ph1);
* disk + network — maps done, shuffle draining (Ph2);
* computation + disk — sort/reduce (Ph3).

The executor in :mod:`repro.core.experiment` uses the JobTracker's own
events (maps-done, shuffle-done) as boundaries — the coarse-grained
"program progress" detection the paper says it currently uses.  This
module provides the observational alternative: a detector that samples
each host's disk and VM CPU counters, classifies fixed windows into the
classes above, and reports phase boundaries without asking Hadoop
anything.  Tests validate it against the oracle events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..virt.cluster import VirtualCluster

__all__ = ["ResourceSample", "PhaseDetector", "DetectorParams"]


@dataclass(frozen=True)
class ResourceSample:
    """One sampling window's cluster-wide utilisation."""

    time: float
    cpu_util: float
    disk_read_rate: float   # bytes/s at the hypervisor level
    disk_write_rate: float  # bytes/s

    @property
    def read_share(self) -> float:
        total = self.disk_read_rate + self.disk_write_rate
        return self.disk_read_rate / total if total > 0 else 0.0


@dataclass(frozen=True)
class DetectorParams:
    """Sampling cadence and classification thresholds."""

    sample_interval: float = 1.0
    #: Read share below which the disk mix counts as "write dominated".
    write_dominated_share: float = 0.15
    #: Consecutive windows a regime must persist to call a boundary.
    hysteresis: int = 2


class PhaseDetector:
    """Infer the Ph1→Ph2/3 boundary from host counters alone.

    The signature of the maps-done boundary is the collapse of the
    *input-read* stream: during Ph1 the hypervisor disks serve a steady
    synchronous read flow (map input); once the last map finishes, disk
    traffic flips to write-dominated (reduce spill/merge/output) with
    only short read bursts.  The detector watches the read share of each
    window and declares the boundary after ``hysteresis`` consecutive
    write-dominated windows.
    """

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        params: Optional[DetectorParams] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.params = params or DetectorParams()
        self.samples: List[ResourceSample] = []
        #: Detected Ph1 end (None until declared).
        self.maps_done_detected: Optional[float] = None
        self._last_counters: Tuple[int, int] = (0, 0)
        self._cpu_busy_last: float = 0.0
        self._streak = 0
        self._stopped = False
        self._proc = env.process(self._run())

    def stop(self) -> None:
        self._stopped = True

    # -- internals -----------------------------------------------------------
    def _take_sample(self) -> ResourceSample:
        reads = sum(h.disk.stats.read_bytes for h in self.cluster.hosts)
        writes = sum(h.disk.stats.write_bytes for h in self.cluster.hosts)
        cpu_busy = sum(vm.cpu.busy_time for vm in self.cluster.vms)
        dt = self.params.sample_interval
        prev_r, prev_w = self._last_counters
        self._last_counters = (reads, writes)
        cpu_util = (cpu_busy - self._cpu_busy_last) / (
            dt * max(1, len(self.cluster.vms))
        )
        self._cpu_busy_last = cpu_busy
        return ResourceSample(
            time=self.env.now,
            cpu_util=min(1.0, cpu_util),
            disk_read_rate=(reads - prev_r) / dt,
            disk_write_rate=(writes - prev_w) / dt,
        )

    def _run(self):
        params = self.params
        warmed = False
        while not self._stopped:
            yield self.env.timeout(params.sample_interval)
            if self._stopped:
                return
            sample = self._take_sample()
            self.samples.append(sample)
            if self.maps_done_detected is not None:
                continue
            busy = sample.disk_read_rate + sample.disk_write_rate > 0
            if not warmed:
                # Wait until the input-read stream is established.
                if busy and sample.read_share > params.write_dominated_share:
                    warmed = True
                continue
            if busy and sample.read_share <= params.write_dominated_share:
                self._streak += 1
                if self._streak >= params.hysteresis:
                    # Boundary sits at the start of the streak.
                    self.maps_done_detected = (
                        self.env.now
                        - params.sample_interval * (params.hysteresis - 1)
                    )
            else:
                self._streak = 0

    # -- analysis helpers ----------------------------------------------------
    def classify(self, sample: ResourceSample,
                 cpu_threshold: float = 0.3) -> str:
        """Paper §IV-A resource classes for one window."""
        disk_active = sample.disk_read_rate + sample.disk_write_rate > 0
        cpu_active = sample.cpu_util >= cpu_threshold
        if cpu_active and disk_active:
            return "computation+disk"
        if disk_active:
            return "disk+network"
        if cpu_active:
            return "computation"
        return "idle"
