"""Fine-grained (per-VM) scheduler plans (paper §IV-A & §VII).

"…this assumption will not hold in the case of slow nodes or tasks or
when the cluster is shared by many users, which needs a more
fine-grained meta-scheduler at the individual VM level and/or in the
VMM level."

A :class:`FineGrainedPlan` assigns, per phase, the Dom0 elevator per
host and the guest elevator per VM, instead of one global pair.  The
executor reuses the same drain-based hot switch; only the control
plane granularity changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..iosched.registry import resolve_name, scheduler_factory
from ..sim.events import AllOf, Event
from ..virt.pair import SchedulerPair

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..virt.cluster import VirtualCluster

__all__ = ["FineGrainedAssignment", "FineGrainedPlan", "apply_assignment"]


@dataclass(frozen=True)
class FineGrainedAssignment:
    """One phase's elevator choices at VM granularity.

    ``vmm`` maps host name → Dom0 elevator; ``vms`` maps VM id → guest
    elevator.  Missing entries mean "leave as is" (the paper's 0).
    """

    vmm: Tuple[Tuple[str, str], ...] = ()
    vms: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def of(cls, vmm: Optional[Dict[str, str]] = None,
           vms: Optional[Dict[str, str]] = None) -> "FineGrainedAssignment":
        return cls(
            vmm=tuple(sorted((h, resolve_name(s)) for h, s in (vmm or {}).items())),
            vms=tuple(sorted((v, resolve_name(s)) for v, s in (vms or {}).items())),
        )

    @classmethod
    def uniform(cls, cluster: "VirtualCluster", pair: SchedulerPair
                ) -> "FineGrainedAssignment":
        """The coarse-grained pair expressed at VM granularity."""
        return cls.of(
            vmm={host.name: pair.vmm for host in cluster.hosts},
            vms={vm.vm_id: pair.vm for vm in cluster.vms},
        )

    @property
    def is_noop(self) -> bool:
        return not self.vmm and not self.vms


@dataclass(frozen=True)
class FineGrainedPlan:
    """Per-phase fine-grained assignments."""

    assignments: Tuple[FineGrainedAssignment, ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("a plan needs at least one phase")

    def __len__(self) -> int:
        return len(self.assignments)


def apply_assignment(
    env: "Environment",
    cluster: "VirtualCluster",
    assignment: FineGrainedAssignment,
) -> Event:
    """Fire all of one assignment's switches; event fires when done."""
    events: List[Event] = []
    host_by_name = {host.name: host for host in cluster.hosts}
    for host_name, sched in assignment.vmm:
        host = host_by_name.get(host_name)
        if host is None:
            raise KeyError(f"unknown host {host_name!r}")
        if host.disk.scheduler.name != sched:
            events.append(host.set_vmm_scheduler(scheduler_factory(sched)))
    for vm_id, sched in assignment.vms:
        vm = cluster.vm(vm_id)
        if vm.scheduler_name != sched:
            events.append(vm.switch_scheduler(scheduler_factory(sched)))
    done = AllOf(env, events)
    return done
