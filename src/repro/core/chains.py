"""Job chains (the paper's Pig motivation for the heuristic).

A chain of K MapReduce jobs has 2K phases; at S = 16 pairs the solution
space ``S^(2K)`` explodes (16⁴ = 65536 plans for two jobs), which is
the paper's argument for a heuristic bounded by ``P × S`` evaluations.
:class:`ChainRunner` executes a chain inside one simulation — each job
reads the previous job's HDFS output — and exposes the same
``score``/``run_plan``/``run_uniform`` interface as
:class:`~repro.core.experiment.JobRunner`, so
:class:`~repro.core.heuristic.HeuristicSearch` and
:class:`~repro.core.bruteforce.BruteForceSearch` run on chains
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Tuple

from ..hdfs.namenode import NameNode
from ..mapreduce.job import JobConfig
from ..mapreduce.jobtracker import MapReduceJob
from ..net.topology import Topology
from ..sim.core import Environment
from ..virt.cluster import ClusterConfig, VirtualCluster
from ..virt.pair import SchedulerPair
from .solution import Solution

__all__ = ["ChainConfig", "ChainRunner", "ChainOutcome"]


@dataclass(frozen=True)
class ChainConfig:
    """A chain of jobs over one cluster; duck-types TestbedConfig."""

    cluster: ClusterConfig
    jobs: Tuple[JobConfig, ...]
    seeds: Tuple[int, ...] = (0,)
    #: Two phases per job: maps-running / shuffle+reduce.
    phases_per_job: int = 2

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a chain needs at least one job")
        if self.phases_per_job != 2:
            raise ValueError("only 2 phases per job are supported")
        if not self.seeds:
            raise ValueError("at least one seed required")

    @property
    def n_phases(self) -> int:
        return self.phases_per_job * len(self.jobs)


@dataclass
class ChainOutcome:
    """Aggregated chain execution (JobRunner RunOutcome-compatible)."""

    solution: Solution
    durations: List[float]
    phase_rows: List[Tuple[float, ...]]

    @property
    def mean_duration(self) -> float:
        return mean(self.durations)

    @property
    def mean_phases(self) -> Tuple[float, ...]:
        return tuple(mean(col) for col in zip(*self.phase_rows))


class ChainRunner:
    """Execute phase plans over a job chain (JobRunner-compatible)."""

    def __init__(self, config: ChainConfig, trace=None):
        self.config = config
        #: Optional TraceBus threaded into every chained simulation.
        self.trace = trace
        self._cache: Dict[Solution, ChainOutcome] = {}
        self.runs_executed = 0

    # -- JobRunner-compatible surface -----------------------------------------------
    def run_uniform(self, pair: SchedulerPair) -> ChainOutcome:
        return self.run_plan(Solution.uniform(pair, self.config.n_phases))

    def run_plan(self, solution: Solution) -> ChainOutcome:
        if len(solution) != self.config.n_phases:
            raise ValueError(
                f"plan has {len(solution)} phases, chain expects "
                f"{self.config.n_phases}"
            )
        cached = self._cache.get(solution)
        if cached is not None:
            return cached
        durations: List[float] = []
        rows: List[Tuple[float, ...]] = []
        for seed in self.config.seeds:
            duration, phases = self.execute_once(solution, seed)
            durations.append(duration)
            rows.append(phases)
        outcome = ChainOutcome(solution, durations, rows)
        self._cache[solution] = outcome
        return outcome

    def score(self, solution: Solution) -> float:
        return self.run_plan(solution).mean_duration

    # -- one chained run ---------------------------------------------------------------
    def execute_once(self, solution: Solution, seed: int) -> Tuple[float, Tuple[float, ...]]:
        """One uncached chained run: ``(duration, per-phase durations)``."""
        self.runs_executed += 1
        env = Environment()
        first_pair = solution.assignments[0]
        cluster = VirtualCluster(
            env, self.config.cluster.with_(initial_pair=first_pair, seed=seed),
            trace=self.trace,
        )
        topology = Topology(env)
        boundaries: List[float] = []
        driver = env.process(
            self._drive_chain(env, cluster, topology, solution, boundaries)
        )
        env.run(until=driver)
        duration = env.now
        marks = [0.0] + boundaries + [duration]
        phases = tuple(b - a for a, b in zip(marks, marks[1:]))
        return duration, phases

    def _drive_chain(self, env, cluster, topology, solution: Solution,
                     boundaries: List[float]):
        assignments = solution.assignments
        phase = 0
        prev_output = None
        carry_over = {}
        for idx, job_config in enumerate(self.config.jobs):
            # Chain the data: job i+1 consumes job i's output.
            if prev_output is not None:
                job_config = job_config.with_(
                    input_path=prev_output,
                    output_path=f"{job_config.output_path}_{idx}",
                )
            namenode = NameNode(
                cluster,
                block_size=job_config.block_size,
                replication=job_config.replication,
            )
            namenode._files.update(carry_over)  # noqa: SLF001 - handoff
            job = MapReduceJob(env, cluster, topology, namenode, job_config,
                               trace=self.trace)
            proc = job.start()

            # Phase boundary: entering this job (switch if planned).
            if phase > 0:
                boundaries.append(env.now)
                if assignments[phase] is not None:
                    yield cluster.set_pair(assignments[phase])
            phase += 1

            # Phase boundary: this job's maps-done.
            yield job.maps_done_event
            boundaries.append(env.now)
            if assignments[phase] is not None:
                yield cluster.set_pair(assignments[phase])
            phase += 1

            yield proc
            prev_output = job_config.output_path
            carry_over = {prev_output: namenode.lookup(prev_output)}
        return env.now
