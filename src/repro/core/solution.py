"""Solutions: assignments of scheduler pairs to job phases.

A solution assigns one pair per phase; ``None`` in a slot is the
paper's ``0`` — *no switch*, keep whatever the previous phase used.
The distinction matters because re-installing even the same pair drains
the queues and pays real cost (paper §IV-B), so the heuristic encodes
"same pair" as "don't touch the elevator".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..virt.pair import SchedulerPair

__all__ = ["Solution"]


@dataclass(frozen=True)
class Solution:
    """A per-phase plan of scheduler pairs."""

    assignments: Tuple[Optional[SchedulerPair], ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("a solution needs at least one phase")
        if self.assignments[0] is None:
            raise ValueError("phase 1 must name a concrete pair")

    def __str__(self) -> str:
        parts = ["0" if a is None else str(a) for a in self.assignments]
        return " -> ".join(parts)

    def __len__(self) -> int:
        return len(self.assignments)

    @classmethod
    def uniform(cls, pair: SchedulerPair, n_phases: int) -> "Solution":
        """The single-pair plan: set once, never switch."""
        if n_phases < 1:
            raise ValueError("n_phases must be >= 1")
        return cls((pair,) + (None,) * (n_phases - 1))

    @classmethod
    def of(cls, pairs: Sequence[Optional[SchedulerPair]]) -> "Solution":
        """Build from a sequence, collapsing repeats into no-switches."""
        normalized: List[Optional[SchedulerPair]] = []
        last: Optional[SchedulerPair] = None
        for pair in pairs:
            if pair is None or pair == last:
                normalized.append(None)
            else:
                normalized.append(pair)
                last = pair
        return cls(tuple(normalized))

    def effective(self) -> List[SchedulerPair]:
        """The pair actually installed during each phase."""
        out: List[SchedulerPair] = []
        current: Optional[SchedulerPair] = None
        for assignment in self.assignments:
            if assignment is not None:
                current = assignment
            assert current is not None  # guaranteed by __post_init__
            out.append(current)
        return out

    @property
    def n_switches(self) -> int:
        """Elevator switches the plan performs after the job starts."""
        return sum(1 for a in self.assignments[1:] if a is not None)

    @property
    def is_uniform(self) -> bool:
        return self.n_switches == 0
