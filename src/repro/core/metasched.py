"""The adaptive meta-scheduler: the paper's end-to-end method.

Given an application (a :class:`~repro.core.experiment.TestbedConfig`),
the meta-scheduler (1) profiles the job once per candidate pair,
(2) runs Algorithm 1 to assign pairs to phases, and (3) reports the
adaptive plan next to the paper's two baselines — the default
(CFQ, CFQ) and the best single pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..virt.pair import DEFAULT_PAIR, SchedulerPair, all_pairs
from .experiment import JobRunner, TestbedConfig
from .heuristic import HeuristicSearch, ProfiledScores, SearchResult, profile_single_pairs
from .solution import Solution

__all__ = ["AdaptiveMetaScheduler", "AdaptiveReport"]


@dataclass
class AdaptiveReport:
    """The paper's Fig. 7 triple for one workload/configuration."""

    default_pair: SchedulerPair
    default_time: float
    best_single_pair: SchedulerPair
    best_single_time: float
    adaptive_solution: Solution
    adaptive_time: float
    evaluations: int
    scores: ProfiledScores

    @property
    def gain_vs_default(self) -> float:
        """Fractional improvement over (CFQ, CFQ)."""
        return 1.0 - self.adaptive_time / self.default_time

    @property
    def gain_vs_best_single(self) -> float:
        return 1.0 - self.adaptive_time / self.best_single_time

    def summary(self) -> str:
        return (
            f"default {self.default_pair} {self.default_time:.1f}s | "
            f"best-single {self.best_single_pair} {self.best_single_time:.1f}s | "
            f"adaptive [{self.adaptive_solution}] {self.adaptive_time:.1f}s "
            f"({100 * self.gain_vs_default:.1f}% vs default, "
            f"{100 * self.gain_vs_best_single:.1f}% vs best single)"
        )


class AdaptiveMetaScheduler:
    """Profile → search → report, on one testbed configuration."""

    def __init__(
        self,
        config: TestbedConfig,
        pairs: Optional[Sequence[SchedulerPair]] = None,
        runner: Optional[JobRunner] = None,
    ):
        self.config = config
        self.pairs = list(pairs) if pairs is not None else all_pairs()
        self.runner = runner or JobRunner(config)
        self._scores: Optional[ProfiledScores] = None
        self._search: Optional[SearchResult] = None

    # -- stages ------------------------------------------------------------------
    def profile(self) -> ProfiledScores:
        """Single-pair profiling runs (cached)."""
        if self._scores is None:
            self._scores = profile_single_pairs(self.runner, self.pairs)
        return self._scores

    def optimize(self) -> SearchResult:
        """Algorithm 1 over the profiled scores (cached)."""
        if self._search is None:
            search = HeuristicSearch(self.runner, self.profile(), self.pairs)
            self._search = search.search()
        return self._search

    # -- the full report ------------------------------------------------------------
    def report(self) -> AdaptiveReport:
        scores = self.profile()
        search = self.optimize()
        best_pair, best_time = scores.best_single()
        default_time = scores.totals.get(DEFAULT_PAIR)
        if default_time is None:
            default_time = self.runner.run_uniform(DEFAULT_PAIR).mean_duration
        return AdaptiveReport(
            default_pair=DEFAULT_PAIR,
            default_time=default_time,
            best_single_pair=best_pair,
            best_single_time=best_time,
            adaptive_solution=search.solution,
            adaptive_time=search.score,
            evaluations=search.evaluations + len(scores.totals),
            scores=scores,
        )
