"""Algorithm 1: heuristic assignment of scheduler pairs to phases.

The search fixes one phase at a time.  For phase *i* it walks the
candidate pairs in the order of their *per-phase* performance from the
single-pair profiling runs (the paper's Fig. 6), evaluating each
candidate in a full job run with the already-fixed prefix and with all
remaining phases pinned to the best single pair for "the left phases
together" (``S_{i+1}``) so every candidate gets a fair tail.  It stops
at the first candidate that fails to improve, then fixes the phase —
emitting the paper's ``0`` (no switch) when the winner equals the last
fixed pair.  Worst case ``P × S`` evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..virt.pair import SchedulerPair, all_pairs
from .experiment import JobRunner
from .solution import Solution

__all__ = ["ProfiledScores", "profile_single_pairs", "HeuristicSearch", "SearchResult"]


@dataclass
class ProfiledScores:
    """Per-pair scores from the single-pair profiling runs (Fig. 6)."""

    #: pair -> total job duration.
    totals: Dict[SchedulerPair, float]
    #: pair -> per-phase durations.
    per_phase: Dict[SchedulerPair, Tuple[float, ...]]

    @property
    def n_phases(self) -> int:
        return len(next(iter(self.per_phase.values())))

    def ranked_for_phase(self, phase: int) -> List[SchedulerPair]:
        """Pairs sorted best-first by their phase-``phase`` duration."""
        return sorted(self.per_phase, key=lambda p: self.per_phase[p][phase])

    def best_for_remaining(self, first_phase: int) -> SchedulerPair:
        """``S_{i+1}``: best pair for phases ``first_phase..P`` combined."""
        def tail(pair: SchedulerPair) -> float:
            return sum(self.per_phase[pair][first_phase:])

        return min(self.per_phase, key=tail)

    def best_single(self) -> Tuple[SchedulerPair, float]:
        pair = min(self.totals, key=self.totals.get)
        return pair, self.totals[pair]


def profile_single_pairs(
    runner: JobRunner, pairs: Optional[Sequence[SchedulerPair]] = None
) -> ProfiledScores:
    """Run the job once per pair (the paper's initial profiling pass).

    The profiling runs are independent, so a sweep-backed runner (one
    with ``prefetch_uniform``) executes them as one parallel batch
    before the sequential read-back below.
    """
    pairs = list(pairs) if pairs is not None else all_pairs()
    prefetch = getattr(runner, "prefetch_uniform", None)
    if prefetch is not None:
        prefetch(pairs)
    totals: Dict[SchedulerPair, float] = {}
    per_phase: Dict[SchedulerPair, Tuple[float, ...]] = {}
    for pair in pairs:
        outcome = runner.run_uniform(pair)
        totals[pair] = outcome.mean_duration
        per_phase[pair] = outcome.mean_phases
    return ProfiledScores(totals=totals, per_phase=per_phase)


@dataclass
class SearchResult:
    """What the heuristic found and what it cost to find it."""

    solution: Solution
    score: float
    evaluations: int
    #: (candidate solution, score) in evaluation order.
    history: List[Tuple[Solution, float]] = field(default_factory=list)


class HeuristicSearch:
    """The paper's Algorithm 1 over a :class:`JobRunner`."""

    def __init__(
        self,
        runner: JobRunner,
        scores: ProfiledScores,
        pairs: Optional[Sequence[SchedulerPair]] = None,
    ):
        self.runner = runner
        self.scores = scores
        self.pairs = list(pairs) if pairs is not None else list(scores.per_phase)
        self.n_phases = runner.config.n_phases
        if scores.n_phases != self.n_phases:
            raise ValueError("profiled scores phase count mismatch")

    # -- the algorithm ------------------------------------------------------------
    def search(self) -> SearchResult:
        history: List[Tuple[Solution, float]] = []
        evaluations = 0
        fixed: List[Optional[SchedulerPair]] = []

        def evaluate(candidate_pair: SchedulerPair, phase: int) -> float:
            nonlocal evaluations
            plan = self._plan_with(fixed, candidate_pair, phase)
            score = self.runner.score(plan)
            evaluations += 1
            history.append((plan, score))
            return score

        for phase in range(self.n_phases):
            order = [
                p for p in self.scores.ranked_for_phase(phase) if p in self.pairs
            ]
            j = 0
            current_score = evaluate(order[j], phase)
            while j + 1 < len(order):
                next_score = evaluate(order[j + 1], phase)
                if next_score < current_score:
                    j += 1
                    current_score = next_score
                else:
                    break
            chosen = order[j]
            last_effective = self._last_effective(fixed)
            if last_effective is not None and chosen == last_effective:
                fixed.append(None)  # the paper's 0: no switch
            else:
                fixed.append(chosen)

        solution = Solution(tuple(fixed))
        return SearchResult(
            solution=solution,
            score=self.runner.score(solution),
            evaluations=evaluations,
            history=history,
        )

    # -- helpers --------------------------------------------------------------------
    def _plan_with(
        self,
        fixed: List[Optional[SchedulerPair]],
        candidate: SchedulerPair,
        phase: int,
    ) -> Solution:
        """(Sol_{i-1}, s_i^j, S_{i+1}) as a runnable plan."""
        slots: List[Optional[SchedulerPair]] = list(fixed)
        last = self._last_effective(fixed)
        slots.append(None if candidate == last else candidate)
        if phase + 1 < self.n_phases:
            tail_pair = self.scores.best_for_remaining(phase + 1)
            tail_last = candidate
            slots.append(None if tail_pair == tail_last else tail_pair)
            # All remaining phases run the same S_{i+1} pair: no further
            # switches.
            slots.extend([None] * (self.n_phases - phase - 2))
        return Solution(tuple(slots))

    @staticmethod
    def _last_effective(
        fixed: List[Optional[SchedulerPair]],
    ) -> Optional[SchedulerPair]:
        for assignment in reversed(fixed):
            if assignment is not None:
                return assignment
        return None
