"""Switch-cost measurement (paper §IV-B, Fig. 5) and a predictive model.

The paper measures the cost of moving between two scheduler-pair
states by running ``dd`` (600 MB of zeroes) in parallel on every VM of
one host and charging everything the two-state run loses against the
average of the two pure runs:

    Cost_switch = T_withTwoSolutions - (T_solution1 + T_solution2) / 2

with the switch fired halfway through the expected run.  The cost is
state-dependent and *non-commutative*, and even a same-to-same switch
is positive because the sysfs store drains the queue regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.core import Environment
from ..virt.cluster import ClusterConfig, VirtualCluster
from ..virt.pair import SchedulerPair, all_pairs
from ..workloads.ddwrite import DdParallelWrite

__all__ = [
    "SwitchCostMeter",
    "SwitchCostMatrix",
    "SwitchCostModel",
    "run_dd_once",
]

MB = 1024 * 1024


def run_dd_once(
    cluster_config: ClusterConfig,
    pair: SchedulerPair,
    seed: int,
    nbytes: int,
    switch_to: Optional[SchedulerPair] = None,
    switch_at: Optional[float] = None,
    trace=None,
) -> float:
    """One dd measurement run (optionally switching pairs mid-flight)."""
    env = Environment()
    cluster = VirtualCluster(
        env, cluster_config.with_(initial_pair=pair, seed=seed), trace=trace
    )
    host = cluster.hosts[0]
    bench = DdParallelWrite(env, host, nbytes=nbytes)
    proc = bench.start()

    if switch_to is not None and switch_at is not None:
        def switcher():
            yield env.timeout(switch_at)
            if proc.is_alive:
                yield cluster.set_pair(switch_to)

        env.process(switcher())

    env.run(until=proc)
    return proc.value


@dataclass
class SwitchCostMatrix:
    """Measured costs, keyed by (from_pair, to_pair)."""

    costs: Dict[Tuple[SchedulerPair, SchedulerPair], float]
    pure_times: Dict[SchedulerPair, float]

    def cost(self, src: SchedulerPair, dst: SchedulerPair) -> float:
        return self.costs[(src, dst)]

    def asymmetry(self, a: SchedulerPair, b: SchedulerPair) -> float:
        """|cost(a→b) − cost(b→a)|: zero iff commutative."""
        return abs(self.costs[(a, b)] - self.costs[(b, a)])

    @property
    def min_cost(self) -> float:
        return min(self.costs.values())

    @property
    def max_cost(self) -> float:
        return max(self.costs.values())


class SwitchCostMeter:
    """Measure transition costs with the paper's dd methodology."""

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        nbytes: int = 600 * MB,
        seeds: Sequence[int] = (0,),
        sweep=None,
    ):
        self.cluster_config = cluster_config or ClusterConfig(hosts=1)
        if self.cluster_config.hosts != 1:
            # The paper measures within one physical machine.
            self.cluster_config = self.cluster_config.with_(hosts=1)
        self.nbytes = nbytes
        self.seeds = tuple(seeds)
        #: Optional :class:`repro.runner.SweepRunner` for parallel/cached runs.
        self.sweep = sweep
        self._pure_cache: Dict[SchedulerPair, float] = {}
        self._transition_cache: Dict[
            Tuple[SchedulerPair, SchedulerPair], float
        ] = {}

    # -- runs ------------------------------------------------------------------
    def _run(self, pair: SchedulerPair, seed: int,
             switch_to: Optional[SchedulerPair] = None,
             switch_at: Optional[float] = None) -> float:
        return run_dd_once(
            self.cluster_config, pair, seed, self.nbytes,
            switch_to=switch_to, switch_at=switch_at,
        )

    def _spec(self, pair: SchedulerPair, seed: int,
              switch_to: Optional[SchedulerPair] = None,
              switch_at: Optional[float] = None):
        from ..runner.spec import RunSpec

        tag = f"dd {pair.label}" + (
            f"->{switch_to.label}@{switch_at:.2f}" if switch_to else ""
        )
        return RunSpec(
            kind="dd",
            seed=seed,
            config=(self.cluster_config, self.nbytes, pair, switch_to,
                    switch_at),
            label=f"{tag} seed={seed}",
        )

    def pure_time(self, pair: SchedulerPair) -> float:
        """Mean dd elapsed time under a single pair."""
        cached = self._pure_cache.get(pair)
        if cached is None:
            cached = mean(self._run(pair, seed) for seed in self.seeds)
            self._pure_cache[pair] = cached
        return cached

    def transition_cost(self, src: SchedulerPair, dst: SchedulerPair) -> float:
        """Cost_switch for ``src → dst`` per the paper's formula."""
        cached = self._transition_cache.get((src, dst))
        if cached is not None:
            return cached
        t1 = self.pure_time(src)
        t2 = self.pure_time(dst)
        switch_at = min(t1, t2) / 2.0
        t_both = mean(
            self._run(src, seed, switch_to=dst, switch_at=switch_at)
            for seed in self.seeds
        )
        cost = t_both - (t1 + t2) / 2.0
        self._transition_cache[(src, dst)] = cost
        return cost

    def matrix(
        self, pairs: Optional[Sequence[SchedulerPair]] = None
    ) -> SwitchCostMatrix:
        pairs = list(pairs) if pairs is not None else all_pairs()
        if self.sweep is not None:
            self._prefetch(pairs)
        costs = {
            (src, dst): self.transition_cost(src, dst)
            for src in pairs
            for dst in pairs
        }
        return SwitchCostMatrix(
            costs=costs,
            pure_times={p: self.pure_time(p) for p in pairs},
        )

    def _prefetch(self, pairs: Sequence[SchedulerPair]) -> None:
        """Two batched passes through the sweep runner.

        The transition runs need the pure times (the switch fires at
        half the shorter pure run), so the pure grid is one parallel
        batch and the ``S²`` transition grid a second.
        """
        pure_specs = [
            self._spec(pair, seed) for pair in pairs for seed in self.seeds
        ]
        payloads = self.sweep.run_specs(pure_specs)
        it = iter(payloads)
        for pair in pairs:
            self._pure_cache[pair] = mean(
                next(it)["elapsed"] for _ in self.seeds
            )
        transition_specs = []
        for src in pairs:
            for dst in pairs:
                switch_at = min(self.pure_time(src), self.pure_time(dst)) / 2.0
                transition_specs.extend(
                    self._spec(src, seed, switch_to=dst, switch_at=switch_at)
                    for seed in self.seeds
                )
        results = iter(self.sweep.run_specs(transition_specs))
        for src in pairs:
            for dst in pairs:
                t_both = mean(next(results)["elapsed"] for _ in self.seeds)
                self._transition_cache[(src, dst)] = (
                    t_both - (self.pure_time(src) + self.pure_time(dst)) / 2.0
                )


class SwitchCostModel:
    """Linear predictor of switch cost (paper §VII future work).

    Features per transition: indicator of each scheduler at each
    endpoint level, plus a bias.  Fitted by least squares on a measured
    matrix; good enough to rank transitions without measuring all
    ``S²`` of them.
    """

    def __init__(self) -> None:
        self._weights: Optional[np.ndarray] = None
        self._feature_names: List[str] = []

    @staticmethod
    def _features(src: SchedulerPair, dst: SchedulerPair) -> Dict[str, float]:
        feats: Dict[str, float] = {"bias": 1.0}
        feats[f"from_vmm_{src.vmm}"] = 1.0
        feats[f"from_vm_{src.vm}"] = 1.0
        feats[f"to_vmm_{dst.vmm}"] = 1.0
        feats[f"to_vm_{dst.vm}"] = 1.0
        feats["same_vmm"] = 1.0 if src.vmm == dst.vmm else 0.0
        feats["same_vm"] = 1.0 if src.vm == dst.vm else 0.0
        return feats

    def fit(self, matrix: SwitchCostMatrix) -> float:
        """Least-squares fit; returns RMS error over the training data."""
        names: List[str] = sorted(
            {
                name
                for (src, dst) in matrix.costs
                for name in self._features(src, dst)
            }
        )
        self._feature_names = names
        rows = []
        targets = []
        for (src, dst), cost in matrix.costs.items():
            feats = self._features(src, dst)
            rows.append([feats.get(name, 0.0) for name in names])
            targets.append(cost)
        a = np.asarray(rows)
        b = np.asarray(targets)
        self._weights, *_ = np.linalg.lstsq(a, b, rcond=None)
        residual = a @ self._weights - b
        return float(np.sqrt(np.mean(residual**2)))

    def predict(self, src: SchedulerPair, dst: SchedulerPair) -> float:
        if self._weights is None:
            raise RuntimeError("model not fitted")
        feats = self._features(src, dst)
        x = np.asarray([feats.get(name, 0.0) for name in self._feature_names])
        return float(x @ self._weights)
