"""The job-execution harness: run a MapReduce job under a phase plan.

Every run builds a fresh simulated testbed (environment, cluster,
network, HDFS) so runs are independent — the analogue of the paper's
freshly prepared cluster per measurement — and results are averaged
over the configured seeds ("average of three consecutive runs").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import mean
from typing import Dict, List, Optional, Tuple

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..hdfs.namenode import NameNode
from ..mapreduce.job import JobConfig
from ..mapreduce.jobtracker import MapReduceJob
from ..mapreduce.phases import JobResult
from ..net.topology import Topology
from ..sim.core import Environment
from ..sim.tracing import TraceBus
from ..virt.cluster import ClusterConfig, VirtualCluster
from ..virt.pair import SchedulerPair
from .solution import Solution

__all__ = ["TestbedConfig", "RunOutcome", "JobRunner"]


@dataclass(frozen=True)
class TestbedConfig:
    """A complete experiment setup: cluster + job + methodology."""

    __test__ = False  # not a pytest test class despite the name

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    job: JobConfig = None  # type: ignore[assignment]
    #: Root seeds; results are averaged across them (paper: 3 runs).
    seeds: Tuple[int, ...] = (0, 1, 2)
    #: Number of phases the meta-scheduler divides the job into.  The
    #: paper uses 2 in its evaluation (Ph2 folded into Ph3 at 4 waves).
    n_phases: int = 2

    def __post_init__(self) -> None:
        if self.job is None:
            raise ValueError("TestbedConfig requires a job config")
        if self.n_phases not in (2, 3):
            raise ValueError("n_phases must be 2 or 3")
        if not self.seeds:
            raise ValueError("at least one seed required")

    def with_(self, **changes) -> "TestbedConfig":
        return replace(self, **changes)


@dataclass
class RunOutcome:
    """Aggregated outcome of one plan over all seeds."""

    solution: Solution
    results: List[JobResult]
    #: Per-run wall-clock stall spent inside elevator switches.
    switch_stalls: List[float] = field(default_factory=list)

    @property
    def mean_duration(self) -> float:
        return mean(r.duration for r in self.results)

    @property
    def mean_phases(self) -> Tuple[float, ...]:
        """Mean per-phase durations, folded to the plan's phase count."""
        n = len(self.solution)
        rows = [self._fold(r, n) for r in self.results]
        return tuple(mean(col) for col in zip(*rows))

    @staticmethod
    def _fold(result: JobResult, n_phases: int) -> Tuple[float, ...]:
        p = result.phases
        if n_phases == 2:
            return (p.ph1, p.ph2 + p.ph3)
        return (p.ph1, p.ph2, p.ph3)


class JobRunner:
    """Executes plans on freshly built testbeds and caches outcomes."""

    def __init__(self, config: TestbedConfig, trace_factory=None,
                 fault_plan: Optional[FaultPlan] = None):
        self.config = config
        #: Optional callable(seed) -> TraceBus for instrumented runs.
        self.trace_factory = trace_factory
        #: Optional fault plan applied to every run (None = fault-free).
        self.fault_plan = fault_plan
        self._cache: Dict[Solution, RunOutcome] = {}
        self.runs_executed = 0

    # -- public API ---------------------------------------------------------------
    def run_uniform(self, pair: SchedulerPair) -> RunOutcome:
        return self.run_plan(Solution.uniform(pair, self.config.n_phases))

    def run_plan(self, solution: Solution) -> RunOutcome:
        if len(solution) != self.config.n_phases:
            raise ValueError(
                f"plan has {len(solution)} phases, testbed expects "
                f"{self.config.n_phases}"
            )
        cached = self._cache.get(solution)
        if cached is not None:
            return cached
        results: List[JobResult] = []
        stalls: List[float] = []
        for seed in self.config.seeds:
            result, stall = self.execute_once(solution, seed)
            results.append(result)
            stalls.append(stall)
        outcome = RunOutcome(solution=solution, results=results,
                             switch_stalls=stalls)
        self._cache[solution] = outcome
        return outcome

    def score(self, solution: Solution) -> float:
        """The paper's ``Hadoop_time``: mean job duration for a plan."""
        return self.run_plan(solution).mean_duration

    # -- one simulated run -------------------------------------------------------------
    def execute_once(self, solution: Solution, seed: int) -> Tuple[JobResult, float]:
        """One uncached simulated run: ``(job result, switch stall)``."""
        self.runs_executed += 1
        env = Environment()
        trace = self.trace_factory(seed) if self.trace_factory else None
        first_pair = solution.assignments[0]
        cluster = VirtualCluster(
            env,
            self.config.cluster.with_(initial_pair=first_pair, seed=seed),
            trace=trace,
        )
        topology = Topology(env)
        namenode = NameNode(
            cluster,
            block_size=self.config.job.block_size,
            replication=self.config.job.replication,
        )
        plan = self.fault_plan
        job = MapReduceJob(
            env, cluster, topology, namenode, self.config.job, trace=trace,
            fault_plan=plan,
        )
        proc = job.start()
        if plan is not None and plan.is_active:
            FaultInjector(
                env, cluster, plan, manager=job.attempts, trace=trace,
                stats=job.extra_fault_stats,
            )

        stall_total = [0.0]
        if solution.n_switches > 0:
            env.process(self._switcher(env, cluster, job, solution, stall_total))

        env.run(until=proc)
        result: JobResult = proc.value
        # Backend counters ride on the result; all-HDD clusters report
        # nothing, so their payloads stay bit-identical.
        result.storage = cluster.storage_stats()
        return result, stall_total[0]

    def _switcher(self, env, cluster, job: MapReduceJob, solution: Solution,
                  stall_total):
        """Fires the plan's switches at the phase boundaries."""
        boundaries = [job.maps_done_event]
        if self.config.n_phases == 3:
            boundaries.append(job.shuffle_done_event)
        for boundary, assignment in zip(boundaries, solution.assignments[1:]):
            yield boundary
            if assignment is None:
                continue
            start = env.now
            yield cluster.set_pair(assignment)
            stall_total[0] += env.now - start
