"""Online reactive meta-scheduler (paper §VII future work).

"The fine-grained control method is using information from the VMs
within the same physical node and is based on the status of the VMs'
I/O (i.e. the number of request); using this we can switch to the most
suitable pair schedulers."

The controller samples each host's Dom0 I/O over a sliding window —
synchronous-read share and queue pressure — classifies the current
regime, and hot-switches the host's pair when a different regime
persists long enough (hysteresis), *without any offline profiling
runs*.  The rule table encodes the per-phase preferences the offline
study discovers: anticipatory VMM for sync-read-heavy periods,
deadline-flavoured pairs for write-dominated periods, CFQ as the mixed
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..virt.pair import SchedulerPair

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..virt.cluster import VirtualCluster
    from ..virt.hypervisor import PhysicalHost

__all__ = ["OnlineController", "OnlinePolicy", "Regime"]


@dataclass(frozen=True)
class Regime:
    """A named I/O regime with its preferred pair."""

    name: str
    pair: SchedulerPair


@dataclass(frozen=True)
class OnlinePolicy:
    """Sampling/decision knobs plus the regime rule table."""

    #: Window between controller decisions, seconds.
    sample_interval: float = 2.0
    #: Consecutive windows a regime must persist before switching.
    hysteresis: int = 2
    #: Sync-read byte share above which the regime is read-heavy.
    read_heavy_share: float = 0.55
    #: Sync-read byte share below which the regime is write-heavy.
    write_heavy_share: float = 0.25
    read_heavy: Regime = Regime("read-heavy", SchedulerPair("anticipatory", "cfq"))
    write_heavy: Regime = Regime("write-heavy", SchedulerPair("cfq", "deadline"))
    mixed: Regime = Regime("mixed", SchedulerPair("anticipatory", "deadline"))

    def classify(self, read_share: float) -> Regime:
        if read_share >= self.read_heavy_share:
            return self.read_heavy
        if read_share <= self.write_heavy_share:
            return self.write_heavy
        return self.mixed


class OnlineController:
    """One reactive controller per cluster; runs as a sim process."""

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        policy: Optional[OnlinePolicy] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.policy = policy or OnlinePolicy()
        #: (time, host, regime-name) decision log.
        self.decisions: List[Tuple[float, str, str]] = []
        self.switches = 0
        self._streak: Dict[str, Tuple[str, int]] = {}
        self._last_counters: Dict[str, Tuple[int, int]] = {}
        self._proc = env.process(self._run())
        self._stopped = False

    def stop(self) -> None:
        """Stop controlling (the job finished)."""
        self._stopped = True

    # -- internals ---------------------------------------------------------------
    def _window_read_share(self, host: "PhysicalHost") -> Optional[float]:
        stats = host.disk.stats
        prev_r, prev_w = self._last_counters.get(host.name, (0, 0))
        dr = stats.read_bytes - prev_r
        dw = stats.write_bytes - prev_w
        self._last_counters[host.name] = (stats.read_bytes, stats.write_bytes)
        total = dr + dw
        if total <= 0:
            return None  # idle window: no evidence
        return dr / total

    def _run(self):
        policy = self.policy
        while not self._stopped:
            yield self.env.timeout(policy.sample_interval)
            if self._stopped:
                return
            for host in self.cluster.hosts:
                share = self._window_read_share(host)
                if share is None:
                    continue
                regime = policy.classify(share)
                name, streak = self._streak.get(host.name, ("", 0))
                streak = streak + 1 if name == regime.name else 1
                self._streak[host.name] = (regime.name, streak)
                if streak == policy.hysteresis and host.current_pair != regime.pair:
                    self.decisions.append(
                        (self.env.now, host.name, regime.name)
                    )
                    self.switches += 1
                    # Fire-and-forget: the switch drains in the background.
                    host.set_pair(regime.pair)
