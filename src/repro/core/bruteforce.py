"""Exhaustive search over the ``S^P`` solution space.

The paper argues this is impractical as phases multiply (Pig chains,
fine-grained detection) and uses it only as the conceptual baseline;
we implement it to measure the heuristic's optimality gap on small
instances (tests + the ablation bench).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..virt.pair import SchedulerPair, all_pairs
from .experiment import JobRunner
from .heuristic import SearchResult
from .solution import Solution

__all__ = ["BruteForceSearch", "enumerate_solutions"]


def enumerate_solutions(
    pairs: Sequence[SchedulerPair], n_phases: int
) -> List[Solution]:
    """All distinct *effective* plans (repeats collapsed to no-switch).

    Two textual plans with the same effective pair per phase execute
    identically except for pointless same-to-same switches, which no
    sane plan performs — so we enumerate effective assignments only:
    still ``S^P`` plans.
    """
    if n_phases < 1:
        raise ValueError("n_phases must be >= 1")
    out = []
    for combo in itertools.product(pairs, repeat=n_phases):
        out.append(Solution.of(combo))
    # Solutions.of collapses repeats, so duplicates cannot arise; keep
    # the order deterministic for reproducible argmin tie-breaks.
    return out


class BruteForceSearch:
    """Evaluate every plan; optimal but exponential."""

    def __init__(self, runner: JobRunner,
                 pairs: Optional[Sequence[SchedulerPair]] = None):
        self.runner = runner
        self.pairs = list(pairs) if pairs is not None else all_pairs()

    def search(self) -> SearchResult:
        history: List[Tuple[Solution, float]] = []
        best: Optional[Solution] = None
        best_score = float("inf")
        plans = enumerate_solutions(self.pairs, self.runner.config.n_phases)
        for plan in plans:
            score = self.runner.score(plan)
            history.append((plan, score))
            if score < best_score:
                best, best_score = plan, score
        assert best is not None
        return SearchResult(
            solution=best,
            score=best_score,
            evaluations=len(plans),
            history=history,
        )
