"""Live sweep telemetry: structured events and a terminal progress line.

The sweep runner used to be silent between batches — on a cold
multi-hour sweep the only signal was the per-run "ran ..." lines, with
no notion of how much work remained.  This module adds a lightweight
event stream: :class:`SweepRunner <repro.runner.sweep.SweepRunner>`
calls its ``events`` callback with one :class:`SweepEvent` per lookup
outcome and run lifecycle edge, and :class:`ProgressRenderer` consumes
that stream into a single self-overwriting progress line with a
completion ETA (``repro <experiment> --progress``).

Telemetry is wall-clock territory (like :mod:`repro.obs.profile`):
events never flow into payloads or cache keys, and a runner without an
``events`` callback pays nothing.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TextIO

__all__ = ["SweepEvent", "ProgressRenderer", "EVENT_KINDS"]

#: Every kind a :class:`SweepEvent` may carry.
EVENT_KINDS = (
    "batch_started",   # lookups resolved; ``pending`` runs will execute
    "run_started",     # one spec dispatched (inline or to a worker)
    "run_finished",    # one spec executed (``seconds`` of simulation)
    "cache_hit",       # served from the on-disk result cache
    "memo_hit",        # served from the in-process memo
    "batch_finished",  # the batch's results are complete
)


@dataclass(frozen=True)
class SweepEvent:
    """One observable edge in a sweep's execution."""

    kind: str
    #: Human label for the spec (``spec.label`` or ``kind seed=N``).
    label: str = ""
    #: Content-addressed spec key (12-hex prefix is the artifact id).
    key: str = ""
    #: Simulation wall seconds (``run_finished`` only).
    seconds: float = 0.0
    #: Executed runs finished so far in this batch.
    completed: int = 0
    #: Executed runs still outstanding in this batch.
    pending: int = 0


def describe_spec(spec) -> str:
    """The display label the runner stamps on events for ``spec``."""
    return spec.label or f"{spec.kind} seed={spec.seed}"


class ProgressRenderer:
    """Single-line live progress for a sweep (the ``--progress`` flag).

    Consumes :class:`SweepEvent`s (it is callable, so it plugs straight
    into ``SweepRunner(events=...)``) and repaints one ``\\r``-terminated
    status line on ``stream``:

        sweep: 7/24 runs, 3 cache, 0 memo | ETA 41s | job seed=5

    The ETA is ``pending × mean-run-seconds ÷ jobs`` — crude, but it
    converges as runs finish and costs nothing.  Call :meth:`close` (or
    let the runner's ``close`` do it) to finish the line with a newline
    so the next print starts clean.
    """

    def __init__(self, jobs: int = 1, stream: Optional[TextIO] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.jobs = max(jobs, 1)
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.runs = 0
        self.cache_hits = 0
        self.memo_hits = 0
        self.pending = 0
        self.durations: List[float] = []
        self._started = clock()
        self._dirty = False
        #: Repaint at most this often (seconds) so tight memo loops
        #: don't spend their time writing to the terminal.
        self.min_interval = 0.1
        self._last_paint = -1.0

    # -- event intake ---------------------------------------------------------------
    def __call__(self, event: SweepEvent) -> None:
        kind = event.kind
        if kind == "batch_started":
            self.pending += event.pending
        elif kind == "run_finished":
            self.runs += 1
            self.pending = max(0, self.pending - 1)
            self.durations.append(event.seconds)
        elif kind == "cache_hit":
            self.cache_hits += 1
        elif kind == "memo_hit":
            self.memo_hits += 1
        elif kind == "batch_finished":
            self.pending = max(0, self.pending - event.pending)
        self._paint(event.label, force=kind == "batch_finished")

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds until the outstanding runs finish."""
        if not self.pending:
            return 0.0
        if not self.durations:
            return None
        mean = sum(self.durations) / len(self.durations)
        return self.pending * mean / self.jobs

    # -- painting -------------------------------------------------------------------
    def _format(self, label: str) -> str:
        parts = [f"sweep: {self.runs} run{'s' if self.runs != 1 else ''}"]
        if self.pending:
            parts[0] = f"sweep: {self.runs}/{self.runs + self.pending} runs"
        parts.append(f"{self.cache_hits} cache, {self.memo_hits} memo")
        eta = self.eta_seconds()
        if self.pending and eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        elif self.pending:
            parts.append("ETA ...")
        if label:
            parts.append(label)
        return " | ".join(parts)

    def _paint(self, label: str, force: bool = False) -> None:
        now = self.clock()
        if not force and now - self._last_paint < self.min_interval:
            self._dirty = True
            return
        self._last_paint = now
        self._dirty = False
        line = self._format(label)
        # Pad to wipe leftovers from a longer previous line.
        width = max(len(line), getattr(self, "_width", 0))
        self._width = len(line)
        self.stream.write("\r" + line.ljust(width))
        self.stream.flush()

    def close(self) -> None:
        """Finish the progress line (idempotent)."""
        if self.runs or self.cache_hits or self.memo_hits or self._dirty:
            self._paint("", force=True)
            self.stream.write("\n")
            self.stream.flush()
            self.runs = self.cache_hits = self.memo_hits = 0
            self._dirty = False
