"""repro.runner — declarative sweep execution with caching and fan-out.

The experiment layer describes *what* to simulate as lists of
:class:`RunSpec`; :class:`SweepRunner` decides *how* — in-process memo,
on-disk content-addressed cache, or parallel execution across a process
pool.  :class:`SweepJobRunner`/:class:`SweepChainRunner` adapt the sweep
to the sequential ``JobRunner`` interface the adaptive machinery uses.
"""

from .adapter import SweepChainRunner, SweepJobRunner
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .kinds import KINDS, execute_spec, register
from .spec import RunSpec, canonical, spec_key
from .sweep import (
    SweepRunner,
    SweepStats,
    default_jobs,
    default_runner,
    set_default_runner,
)
from .telemetry import EVENT_KINDS, ProgressRenderer, SweepEvent, describe_spec

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EVENT_KINDS",
    "KINDS",
    "ProgressRenderer",
    "ResultCache",
    "RunSpec",
    "SweepChainRunner",
    "SweepEvent",
    "SweepJobRunner",
    "SweepRunner",
    "SweepStats",
    "canonical",
    "default_jobs",
    "default_runner",
    "describe_spec",
    "execute_spec",
    "register",
    "set_default_runner",
    "spec_key",
]
