"""Declarative run specifications and their content-addressed keys.

A :class:`RunSpec` names one *simulation run*: a registered execution
``kind`` (see :mod:`repro.runner.kinds`), the root ``seed``, and a
``config`` payload built from the ordinary configuration dataclasses
(:class:`~repro.core.experiment.TestbedConfig`,
:class:`~repro.virt.cluster.ClusterConfig`, plans, workload specs…).
Because every run in this codebase is a pure function of
``(kind, config, seed)`` (DESIGN.md §6 "run-local iteration order"),
the spec is also a complete cache key: :func:`spec_key` hashes a
canonical JSON form of the spec plus the package version, and two specs
with equal keys are guaranteed to produce bit-identical results.

``label`` is display-only and deliberately excluded from the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Optional

__all__ = ["RunSpec", "canonical", "spec_key"]


@dataclass(frozen=True)
class RunSpec:
    """One simulation run: what to execute and with which seed."""

    #: Execution kind, resolved via :data:`repro.runner.kinds.KINDS`.
    kind: str
    #: Root RNG seed for the run.
    seed: int
    #: Kind-specific configuration payload (dataclasses / primitives).
    config: Any = None
    #: Human-readable tag for progress output; not part of the key.
    label: str = ""

    def __str__(self) -> str:
        return self.label or f"{self.kind} seed={self.seed}"


def canonical(obj: Any) -> Any:
    """Reduce configuration objects to a JSON-stable structure.

    Dataclasses carry their qualified type name so that two different
    config classes with identical field values hash differently.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if is_dataclass(obj) and not isinstance(obj, type):
        record = {
            "__type__": f"{type(obj).__module__}.{type(obj).__qualname__}"
        }
        for f in fields(obj):
            record[f.name] = canonical(getattr(obj, f.name))
        return record
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        items = sorted((str(k), canonical(v)) for k, v in obj.items())
        return {"__dict__": items}
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonical(v)) for v in obj)}
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for a RunSpec key"
    )


def spec_key(spec: RunSpec, version: Optional[str] = None) -> str:
    """Stable content hash of a spec (+ package version) as hex."""
    if version is None:
        from .. import __version__ as version
    payload = {
        "kind": spec.kind,
        "seed": spec.seed,
        "config": canonical(spec.config),
        "version": version,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
