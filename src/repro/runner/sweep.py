"""The sweep runner: parallel, memoised execution of :class:`RunSpec`s.

``SweepRunner.run_specs`` takes a declarative run matrix and returns the
result payloads in order, sourcing each one from (in priority order):

1. the in-process memo — a spec never simulates twice in one process,
   mirroring the per-``Solution`` caching ``JobRunner`` always did;
2. the on-disk cache (unless constructed with ``use_cache=False``);
3. fresh execution — inline when ``jobs == 1``, otherwise fanned out
   over a ``ProcessPoolExecutor`` (worker count from the ``jobs``
   argument, the ``REPRO_JOBS`` environment variable, or
   ``os.cpu_count()``).

Every fresh payload is normalised through a JSON round-trip before it is
memoised, persisted, or returned, so serial, parallel, and cache-hit
executions hand back bit-identical data structures (asserted in
``tests/runner/``).  ``stats`` counts executed simulations and cache
hits; the CLI surfaces the counters after every experiment.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.profile import BatchProfile, SweepProfiler
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .kinds import execute_spec
from .spec import RunSpec, spec_key
from .telemetry import SweepEvent, describe_spec

__all__ = [
    "SweepRunner",
    "SweepStats",
    "default_jobs",
    "default_runner",
    "set_default_runner",
]


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` or the machine's CPU count."""
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an int, got {raw!r}") from None
        if value < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


@dataclass
class SweepStats:
    """Counters for one runner's lifetime."""

    #: Simulations actually executed (the expensive number).
    executed: int = 0
    #: Results served from the on-disk cache.
    cache_hits: int = 0
    #: Results served from the in-process memo.
    memo_hits: int = 0
    #: Wall-clock seconds spent inside executed simulations (summed
    #: across workers, so it can exceed elapsed time under parallelism).
    run_seconds: float = 0.0
    #: Simulations executed with the on-disk cache disabled (results
    #: not persisted) — e.g. ``--no-cache`` or the ``--trace-out``
    #: cache bypass.
    bypassed: int = 0

    def snapshot(self) -> "SweepStats":
        return SweepStats(
            self.executed, self.cache_hits, self.memo_hits,
            self.run_seconds, self.bypassed,
        )

    def since(self, other: "SweepStats") -> "SweepStats":
        return SweepStats(
            self.executed - other.executed,
            self.cache_hits - other.cache_hits,
            self.memo_hits - other.memo_hits,
            self.run_seconds - other.run_seconds,
            self.bypassed - other.bypassed,
        )

    def summary(self) -> str:
        line = (
            f"simulations executed {self.executed}, "
            f"cache hits {self.cache_hits}, memo hits {self.memo_hits}"
        )
        if self.bypassed:
            line += f", cache bypassed {self.bypassed}"
        return line


def _timed_execute(spec: RunSpec) -> Tuple[str, float]:
    """Worker entry point: run one spec, return (payload JSON, seconds).

    The payload travels as canonical JSON text so the parent decodes
    fresh results exactly the way it decodes cached ones.
    """
    start = time.perf_counter()
    payload = execute_spec(spec)
    text = json.dumps(payload, sort_keys=True)
    return text, time.perf_counter() - start


class SweepRunner:
    """Execute declarative run matrices with memoisation and fan-out."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: os.PathLike | str = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        progress: Optional[Callable[[RunSpec, float], None]] = None,
        events: Optional[Callable[[SweepEvent], None]] = None,
    ):
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if use_cache else None
        )
        #: Called as ``progress(spec, seconds)`` after each executed run.
        self.progress = progress
        #: Live telemetry stream (see :mod:`repro.runner.telemetry`):
        #: one :class:`SweepEvent` per lookup outcome and run edge.
        self.events = events
        self.stats = SweepStats()
        #: Wall-clock profiling of every run_specs batch (repro.obs).
        self.profiler = SweepProfiler(jobs=self.jobs)
        self._memo: Dict[str, Any] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def cache_stats(self) -> Dict[str, Any]:
        """Disk-cache traffic counters plus the runner's bypass count.

        ``hits``/``misses``/``bytes_read``/``bytes_written`` come from
        :class:`ResultCache` (zeros when the cache is disabled);
        ``bypassed`` counts simulations that ran with the cache off.
        This is what ``--trace-out`` folds into payload metadata and
        what the profiler summary prints.
        """
        stats: Dict[str, Any] = (
            dict(self.cache.stats()) if self.cache is not None
            else {"hits": 0, "misses": 0, "bytes_read": 0, "bytes_written": 0}
        )
        stats["bypassed"] = self.stats.bypassed
        return stats

    def profile_summary(self) -> str:
        """Human-readable profiling report (stage timings, utilization,
        cache traffic) for everything this runner has executed so far."""
        return self.profiler.summary(self.cache_stats())

    def _emit(self, kind: str, spec: Optional[RunSpec] = None, key: str = "",
              seconds: float = 0.0, completed: int = 0,
              pending: int = 0) -> None:
        if self.events is None:
            return
        self.events(SweepEvent(
            kind=kind, label=describe_spec(spec) if spec is not None else "",
            key=key, seconds=seconds, completed=completed, pending=pending,
        ))

    # -- execution ------------------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> Any:
        return self.run_specs([spec])[0]

    def run_specs(self, specs: Sequence[RunSpec]) -> List[Any]:
        """Result payloads for ``specs``, order-preserving."""
        specs = list(specs)
        stats_before = self.stats.snapshot()
        t_start = time.perf_counter()
        keys = [spec_key(spec) for spec in specs]
        results: List[Any] = [None] * len(specs)
        missing: Dict[str, RunSpec] = {}
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if key in self._memo:
                results[i] = self._memo[key]
                self.stats.memo_hits += 1
                self._emit("memo_hit", spec, key)
                continue
            if self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    self._memo[key] = record["result"]
                    results[i] = record["result"]
                    self.stats.cache_hits += 1
                    self._emit("cache_hit", spec, key)
                    continue
            # Duplicate keys inside one batch simulate once.
            missing.setdefault(key, spec)

        t_lookup = time.perf_counter()
        if missing:
            self._emit("batch_started", pending=len(missing))
            self._execute_missing(missing)
            self._emit("batch_finished", completed=len(missing))
            for i, key in enumerate(keys):
                if results[i] is None and key in self._memo:
                    results[i] = self._memo[key]
        delta = self.stats.since(stats_before)
        self.profiler.record_batch(BatchProfile(
            specs=len(specs),
            executed=delta.executed,
            memo_hits=delta.memo_hits,
            cache_hits=delta.cache_hits,
            lookup_seconds=t_lookup - t_start,
            execute_seconds=time.perf_counter() - t_lookup,
            busy_seconds=delta.run_seconds,
        ))
        return results

    # -- internals ------------------------------------------------------------------
    def _execute_missing(self, missing: Dict[str, RunSpec]) -> None:
        self._batch_total = len(missing)
        self._batch_done = 0
        if self.jobs == 1 or len(missing) == 1:
            for key, spec in missing.items():
                self._emit("run_started", spec, key,
                           pending=self._batch_total - self._batch_done)
                self._record(key, spec, *_timed_execute(spec))
            return
        pool = self._ensure_pool()
        futures = {}
        for key, spec in missing.items():
            futures[pool.submit(_timed_execute, spec)] = (key, spec)
            self._emit("run_started", spec, key, pending=len(missing))
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                key, spec = futures[future]
                text, seconds = future.result()
                self._record(key, spec, text, seconds)

    def _record(self, key: str, spec: RunSpec, text: str, seconds: float) -> None:
        # One decode path for fresh, parallel, and cached payloads: the
        # JSON round-trip is what guarantees bit-identical results.
        payload = json.loads(text)
        self._memo[key] = payload
        if self.cache is not None:
            from .. import __version__

            self.cache.put(key, {
                "key": key,
                "kind": spec.kind,
                "seed": spec.seed,
                "label": spec.label,
                "version": __version__,
                "seconds": seconds,
                "result": payload,
            })
        else:
            self.stats.bypassed += 1
        self.stats.executed += 1
        self.stats.run_seconds += seconds
        self._batch_done = getattr(self, "_batch_done", 0) + 1
        total = getattr(self, "_batch_total", self._batch_done)
        self._emit("run_finished", spec, key, seconds=seconds,
                   completed=self._batch_done,
                   pending=max(0, total - self._batch_done))
        if self.progress is not None:
            self.progress(spec, seconds)


#: Process-wide runner used when experiments are called without one.
_default_runner: Optional[SweepRunner] = None


def default_runner() -> SweepRunner:
    """The shared runner for direct library calls (lazily built)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner()
    return _default_runner


def set_default_runner(runner: Optional[SweepRunner]) -> None:
    """Install (or clear, with ``None``) the process-wide runner."""
    global _default_runner
    if _default_runner is not None and _default_runner is not runner:
        _default_runner.close()
    _default_runner = runner
