"""On-disk result cache: one JSON record per executed :class:`RunSpec`.

Layout (content-addressed, two-level fan-out to keep directories small)::

    <root>/ab/abcdef….json

Each record carries the result payload plus enough provenance to make
the files self-describing (`kind`, `label`, `seed`, package version).
Corrupted or partial records — an interrupted write, a stray file — are
treated as misses so the runner falls back to re-simulating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Content-addressed store of run results keyed by spec hashes."""

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        # Traffic counters for the observability profiler: how often the
        # disk cache answered, and how many bytes moved either way.
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        self.bytes_read += len(text.encode("utf-8"))
        try:
            record = json.loads(text)
        except ValueError:
            self.misses += 1
            return None
        if not isinstance(record, dict) or "result" not in record:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically persist a record (write-to-temp + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        text = json.dumps(record, sort_keys=True)
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)
        self.bytes_written += len(text.encode("utf-8"))
