"""On-disk result cache: one JSON record per executed :class:`RunSpec`.

Layout (content-addressed, two-level fan-out to keep directories small)::

    <root>/ab/abcdef….json

Each record carries the result payload plus enough provenance to make
the files self-describing (`kind`, `label`, `seed`, package version).
Corrupted or partial records — an interrupted write, a stray file — are
treated as misses so the runner falls back to re-simulating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Content-addressed store of run results keyed by spec hashes."""

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            return None
        if not isinstance(record, dict) or "result" not in record:
            return None
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically persist a record (write-to-temp + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(record, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)
