"""Execution kinds: the pure functions a :class:`RunSpec` names.

Every kind takes ``(config, seed)`` and returns a JSON-able payload —
that is what makes runs executable in worker processes and storable in
the on-disk cache.  The payloads round-trip through JSON before anyone
reads them (see :meth:`SweepRunner.run_specs`), so fresh, parallel, and
cache-hit executions are structurally — and therefore bit- — identical.

The registered kinds cover every simulation the experiment suite runs:

* ``job`` — one MapReduce job under a phase plan (fig2/4/6/7/8, tables);
* ``chain`` — a multi-job chain under a phase plan (``ablation-chain``);
* ``sysbench`` — the Fig. 1 sequential-write benchmark;
* ``instrumented_job`` — a job run exporting throughput samples (fig3);
* ``dd`` — a parallel-dd run, optionally switching pairs (fig5);
* ``sort_custom`` — sort with mechanism knockouts (``ablation-mechanisms``);
* ``online_sort`` — sort under the reactive controller (``ablation-online``);
* ``faulty_job`` — a job run under a fault plan (``fig9-faults``);
* ``controlled_job`` — a job under the online adaptive controller
  (``fig-ctrl``), optionally with faults and background interference.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Tuple

from ..api import assemble_cluster, assemble_job
from ..core.chains import ChainRunner
from ..core.experiment import JobRunner
from ..core.online import OnlineController, OnlinePolicy
from ..core.switch_cost import run_dd_once
from ..ctrl import SIGNAL_TOPICS, OnlineAdaptiveController, make_policy
from ..faults.injector import FaultInjector
from ..hdfs.namenode import NameNode
from ..iosched.anticipatory import AnticipatoryParams, AnticipatoryScheduler
from ..metrics.slo import percentiles
from ..net.topology import Topology
from ..obs import capture
from ..obs.metrics import TraceMetrics
from ..mapreduce.jobtracker import MapReduceJob
from ..mapreduce.multijob import MultiJobTracker
from ..mapreduce.phases import JobResult, PhaseTimes
from ..sim.core import Environment
from ..sim.tracing import TraceBus
from ..virt.cluster import VirtualCluster
from ..virt.pair import SchedulerPair
from ..workloads.arrivals import generate_arrivals
from ..workloads.sysbench import SysbenchSeqWrite
from .spec import RunSpec

__all__ = [
    "KINDS",
    "register",
    "execute_spec",
    "encode_job_result",
    "decode_job_result",
]

MB = 1024 * 1024

KINDS: Dict[str, Callable[[Any, int], Dict[str, Any]]] = {}


def register(name: str):
    """Register a function as the executor for ``kind=name``."""

    def deco(fn):
        KINDS[name] = fn
        return fn

    return deco


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one spec to completion (in whatever process this is).

    When trace capture is enabled (``$REPRO_TRACE_OUT``, usually via
    the CLI's ``--trace-out``), the run executes with a recording
    :class:`~repro.sim.tracing.TraceBus` and its records + metrics
    snapshot are written to the capture directory afterwards.  The
    returned payload is byte-identical either way — tracing is a side
    channel, never an input.
    """
    try:
        fn = KINDS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown run kind {spec.kind!r}") from None
    _reset_run_ids()
    cfg = capture.config_from_env()
    if cfg is None:
        return fn(spec.config, spec.seed)
    with capture.RunCapture(cfg, spec=spec) as cap:
        payload = fn(spec.config, spec.seed)
    cap.finish(spec)
    return payload


# -- job runs (and their payload codec) -----------------------------------------------


def encode_job_result(result: JobResult, switch_stall: float) -> Dict[str, Any]:
    p = result.phases
    payload: Dict[str, Any] = {
        "job_name": result.job_name,
        "phases": {
            "start": p.start,
            "maps_done": p.maps_done,
            "shuffle_done": p.shuffle_done,
            "end": p.end,
        },
        "n_maps": result.n_maps,
        "n_reducers": result.n_reducers,
        "input_bytes": result.input_bytes,
        "map_output_bytes": result.map_output_bytes,
        "shuffle_bytes": result.shuffle_bytes,
        "reduce_output_bytes": result.reduce_output_bytes,
        "map_progress": [[t, f] for t, f in result.map_progress],
        "switch_stall": switch_stall,
    }
    if result.storage:
        # Only non-HDD backends report counters, so the key is absent
        # from (and the payload bit-identical for) all-HDD runs.
        payload["storage"] = {k: result.storage[k]
                              for k in sorted(result.storage)}
    return payload


def decode_job_result(payload: Dict[str, Any]) -> Tuple[JobResult, float]:
    p = payload["phases"]
    result = JobResult(
        job_name=payload["job_name"],
        phases=PhaseTimes(
            start=p["start"],
            maps_done=p["maps_done"],
            shuffle_done=p["shuffle_done"],
            end=p["end"],
        ),
        n_maps=payload["n_maps"],
        n_reducers=payload["n_reducers"],
        input_bytes=payload["input_bytes"],
        map_output_bytes=payload["map_output_bytes"],
        shuffle_bytes=payload["shuffle_bytes"],
        reduce_output_bytes=payload["reduce_output_bytes"],
        map_progress=[tuple(sample) for sample in payload["map_progress"]],
        fault_stats=dict(payload.get("faults", {})),
        storage=dict(payload.get("storage", {})),
    )
    return result, payload["switch_stall"]


def _reset_run_ids() -> None:
    """Restart the process-global id counters (rids, block ids, flow
    ids) before each run.  The ids are pure labels, so results are
    unchanged; what this buys is same-seed runs whose *traces* are
    byte-identical even when earlier runs in this process consumed ids.
    """
    from ..disk.request import reset_rids
    from ..hdfs.blocks import reset_block_ids
    from ..net.flow import reset_fids

    reset_rids()
    reset_block_ids()
    reset_fids()


def _trace_factory():
    """JobRunner-style ``trace_factory`` for the active capture, if any."""
    bus = capture.current_bus()
    return (lambda seed: bus) if bus is not None else None


@register("job")
def _run_job(config, seed: int) -> Dict[str, Any]:
    """config = (TestbedConfig, Solution)."""
    testbed, solution = config
    runner = JobRunner(testbed.with_(seeds=(seed,)),
                       trace_factory=_trace_factory())
    result, stall = runner.execute_once(solution, seed)
    return encode_job_result(result, stall)


@register("faulty_job")
def _run_faulty_job(config, seed: int) -> Dict[str, Any]:
    """config = (TestbedConfig, Solution, FaultPlan).

    A separate kind (rather than a field on ``job``) so fault-free
    specs keep their historical cache keys: :func:`~repro.runner.spec.canonical`
    hashes every config field, and ``job`` configs never mention
    faults.  The payload is the ``job`` payload plus a ``faults``
    sub-dict of attempt/injector counters.
    """
    testbed, solution, plan = config
    runner = JobRunner(testbed.with_(seeds=(seed,)), fault_plan=plan,
                       trace_factory=_trace_factory())
    result, stall = runner.execute_once(solution, seed)
    payload = encode_job_result(result, stall)
    payload["faults"] = {k: result.fault_stats[k]
                         for k in sorted(result.fault_stats)}
    return payload


@register("controlled_job")
def _run_controlled_job(config, seed: int) -> Dict[str, Any]:
    """config = (TestbedConfig, CtrlConfig, FaultPlan | None).

    A job run with the online adaptive controller attached: the
    controller detects phase boundaries from live trace topics and
    switches scheduler pairs through the cluster's normal machinery.
    ``ctrl.policy=None`` runs the static ``ctrl.initial`` pair end to
    end (the baseline the metamorphic tests pin against).  The payload
    is the ``job`` payload plus a ``ctrl`` sub-dict recording
    detections, decisions, switches, and (for the bandit) learned
    state.
    """
    testbed, ctrl, fault_plan = config
    bus = capture.current_bus() or TraceBus()
    env = Environment()
    initial = SchedulerPair.parse(ctrl.initial)
    cluster = VirtualCluster(
        env,
        testbed.cluster.with_(initial_pair=initial, seed=seed),
        trace=bus,
    )
    topology = Topology(env)
    namenode = NameNode(cluster, block_size=testbed.job.block_size,
                        replication=testbed.job.replication)
    job = MapReduceJob(env, cluster, topology, namenode, testbed.job,
                       trace=bus, fault_plan=fault_plan)
    proc = job.start()
    if fault_plan is not None and fault_plan.is_active:
        FaultInjector(env, cluster, fault_plan, manager=job.attempts,
                      trace=bus, stats=job.extra_fault_stats)
    controller = None
    if ctrl.policy is not None:
        metrics = TraceMetrics()
        metrics.attach(bus, topics=SIGNAL_TOPICS)
        policy = make_policy(ctrl, rng=cluster.rng.stream("ctrl.bandit"))
        controller = OnlineAdaptiveController(
            env, cluster, bus, metrics.registry, policy, ctrl,
            n_phases=testbed.n_phases,
        )
    if ctrl.interference_bytes > 0:
        # Background co-tenant write stream (the interference condition
        # of fig-ctrl); it may still be running when the job completes.
        SysbenchSeqWrite(env, cluster,
                         total_bytes=ctrl.interference_bytes).start()
    env.run(until=proc)
    result = proc.value
    result.storage = cluster.storage_stats()

    stall = controller.switch_stall if controller is not None else 0.0
    payload = encode_job_result(result, stall)
    if fault_plan is not None:
        payload["faults"] = {k: result.fault_stats[k]
                             for k in sorted(result.fault_stats)}
    if controller is not None:
        controller.policy.learn(result.duration)
        payload["ctrl"] = controller.report()
        payload["ctrl"]["state"] = [
            list(row) for row in controller.policy.export_state()
        ]
    else:
        payload["ctrl"] = {
            "policy": "static",
            "initial": ctrl.initial,
            "plan": [ctrl.initial] * testbed.n_phases,
            "detections": [],
            "decisions": [],
            "switches": [],
            "n_switches": 0,
            "switch_stall": 0.0,
            "state": [],
        }
    return payload


def _max_concurrency(jobs) -> int:
    """Peak number of jobs simultaneously live (submit..end overlap)."""
    edges = []
    for rec in jobs:
        edges.append((rec["submit"], 1))
        edges.append((rec["end"], -1))
    # Ends sort before starts at the same instant: a job finishing
    # exactly when another arrives is not concurrency.
    edges.sort(key=lambda e: (e[0], e[1]))
    live = peak = 0
    for _, delta in edges:
        live += delta
        peak = max(peak, live)
    return peak


@register("multi_job")
def _run_multi_job(config, seed: int) -> Dict[str, Any]:
    """config = MultiJobConfig.

    The payload reports the cluster view (makespan, goodput, peak
    concurrency), one record per job (sorted by job id), and per-tenant
    SLO percentiles (nearest-rank p50/p95/p99 over job latency).
    """
    trace = capture.current_bus()
    env, cluster = assemble_cluster(config.cluster, seed=seed, trace=trace)
    topology = Topology(env)
    namenode = NameNode(cluster, block_size=config.base_job.block_size)
    arrivals = generate_arrivals(
        config.arrivals, cluster.rng.stream("workload.arrivals")
    )
    tracker = MultiJobTracker(
        env, cluster, topology, namenode, config.base_job, arrivals,
        scheduler=config.scheduler,
        map_slots_per_vm=config.map_slots_per_vm,
        reduce_slots_per_vm=config.reduce_slots_per_vm,
        switch_plan=config.switch_plan,
        trace=trace,
    )
    proc = tracker.start()
    env.run(until=proc)
    result = proc.value

    by_tenant: Dict[str, list] = {}
    for rec in result.jobs:
        by_tenant.setdefault(rec["tenant"], []).append(rec["latency"])
    tenants = {
        tenant: {
            "jobs": len(latencies),
            "mean_latency": sum(latencies) / len(latencies),
            **percentiles(latencies),
        }
        for tenant, latencies in sorted(by_tenant.items())
    }
    span_end = max(rec["end"] for rec in result.jobs)
    span = span_end - result.start
    useful_bytes = sum(
        rec["input_bytes"] + rec["reduce_output_bytes"] for rec in result.jobs
    )
    payload = {
        "scheduler": result.scheduler,
        "n_jobs": len(result.jobs),
        "makespan": result.makespan,
        "max_concurrency": _max_concurrency(result.jobs),
        "goodput_bytes_per_s": useful_bytes / span if span > 0 else 0.0,
        "jobs": result.jobs,
        "tenants": tenants,
    }
    storage = cluster.storage_stats()
    if storage:
        payload["storage"] = {k: storage[k] for k in sorted(storage)}
    return payload


@register("chain")
def _run_chain(config, seed: int) -> Dict[str, Any]:
    """config = (ChainConfig, Solution)."""
    chain_config, solution = config
    runner = ChainRunner(replace(chain_config, seeds=(seed,)),
                         trace=capture.current_bus())
    duration, phases = runner.execute_once(solution, seed)
    return {"duration": duration, "phases": list(phases)}


# -- workload benchmarks --------------------------------------------------------------


@register("sysbench")
def _run_sysbench(config, seed: int) -> Dict[str, Any]:
    """config = (ClusterConfig, total_bytes, n_files, vms_per_host)."""
    cluster_config, total_bytes, n_files, vms_per_host = config
    env, cluster = assemble_cluster(cluster_config, seed=seed,
                                    trace=capture.current_bus())
    bench = SysbenchSeqWrite(
        env,
        cluster,
        total_bytes=total_bytes,
        n_files=n_files,
        vms_per_host=vms_per_host,
    )
    proc = bench.start()
    env.run(until=proc)
    return {"elapsed": proc.value}


@register("dd")
def _run_dd(config, seed: int) -> Dict[str, Any]:
    """config = (ClusterConfig, nbytes, pair, switch_to|None, switch_at|None)."""
    cluster_config, nbytes, pair, switch_to, switch_at = config
    elapsed = run_dd_once(
        cluster_config, pair, seed, nbytes,
        switch_to=switch_to, switch_at=switch_at,
        trace=capture.current_bus(),
    )
    return {"elapsed": elapsed}


# -- instrumented / customised job runs -----------------------------------------------


@register("instrumented_job")
def _run_instrumented_job(config, seed: int) -> Dict[str, Any]:
    """config = (ClusterConfig, JobConfig); exports throughput samples."""
    cluster_config, job_config = config
    parts = assemble_job(cluster_config, job_config, seed=seed,
                         trace=capture.current_bus())
    env, cluster = parts.env, parts.cluster
    proc = parts.job.start()
    env.run(until=proc)
    duration = env.now
    host = cluster.hosts[0]
    dom0 = [r / MB for r in host.disk.stats.throughput.rates(0.0, duration)]
    vms = {
        str(vm.vm_id): [
            r / MB for r in vm.vdisk.stats.throughput.rates(0.0, duration)
        ]
        for vm in host.vms
    }
    return {"duration": duration, "dom0": dom0, "vms": vms}


@register("sort_custom")
def _run_sort_custom(config, seed: int) -> Dict[str, Any]:
    """config = (ClusterConfig, JobConfig, zero_anticipation: bool)."""
    cluster_config, job_config, zero_anticipation = config
    parts = assemble_job(cluster_config, job_config, seed=seed,
                         trace=capture.current_bus())
    if zero_anticipation:
        # Swap before any I/O exists; queues are empty so this is free.
        for host in parts.cluster.hosts:
            host.disk.scheduler = AnticipatoryScheduler(
                params=AnticipatoryParams(antic_expire=1e-9, max_think_time=0.0)
            )
    proc = parts.job.start()
    parts.env.run(until=proc)
    return {"duration": proc.value.duration}


@register("online_sort")
def _run_online_sort(config, seed: int) -> Dict[str, Any]:
    """config = (ClusterConfig, JobConfig); reactive controller attached."""
    cluster_config, job_config = config
    parts = assemble_job(cluster_config, job_config, seed=seed,
                         trace=capture.current_bus())
    env = parts.env
    controller = OnlineController(env, parts.cluster, OnlinePolicy())
    proc = parts.job.start()

    def stopper():
        yield proc
        controller.stop()

    env.process(stopper())
    env.run(until=proc)
    return {"duration": proc.value.duration}
