"""JobRunner/ChainRunner-compatible facades over a :class:`SweepRunner`.

The adaptive machinery (``profile_single_pairs``, ``HeuristicSearch``,
``AdaptiveMetaScheduler``) drives a runner one plan at a time — an
inherently sequential control flow.  These adapters keep that interface
while routing every underlying simulation through the sweep runner, so
each evaluation parallelises across seeds, repeats hit the memo/disk
cache, and a batch of plans can be *prefetched* in one parallel wave
before the sequential logic reads them back.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Sequence

from ..core.chains import ChainConfig, ChainOutcome
from ..core.experiment import RunOutcome, TestbedConfig
from ..core.solution import Solution
from ..virt.pair import SchedulerPair
from .kinds import decode_job_result
from .spec import RunSpec
from .sweep import SweepRunner, default_runner

__all__ = ["SweepJobRunner", "SweepChainRunner"]


class _SweepRunnerBase:
    def __init__(self, config, sweep: SweepRunner = None, label: str = ""):
        self.config = config
        self.sweep = sweep if sweep is not None else default_runner()
        self.label = label
        self._outcomes: Dict[Solution, object] = {}

    # -- spec construction ----------------------------------------------------------
    def specs_for(self, solution: Solution) -> List[RunSpec]:
        raise NotImplementedError

    def _label(self, solution: Solution, seed: int) -> str:
        prefix = f"{self.label} " if self.label else ""
        return f"{prefix}[{solution}] seed={seed}"

    # -- JobRunner-compatible surface -------------------------------------------------
    def run_uniform(self, pair: SchedulerPair):
        return self.run_plan(Solution.uniform(pair, self.config.n_phases))

    def run_plan(self, solution: Solution):
        if len(solution) != self.config.n_phases:
            raise ValueError(
                f"plan has {len(solution)} phases, testbed expects "
                f"{self.config.n_phases}"
            )
        cached = self._outcomes.get(solution)
        if cached is not None:
            return cached
        payloads = self.sweep.run_specs(self.specs_for(solution))
        outcome = self._assemble(solution, payloads)
        self._outcomes[solution] = outcome
        return outcome

    def score(self, solution: Solution) -> float:
        """The paper's ``Hadoop_time``: mean job duration for a plan."""
        return self.run_plan(solution).mean_duration

    def _assemble(self, solution: Solution, payloads: List[dict]):
        raise NotImplementedError

    # -- batching -------------------------------------------------------------------
    def prefetch(self, solutions: Iterable[Solution]) -> None:
        """Run many plans in one parallel wave (results memoised)."""
        self.sweep.run_specs(
            [spec for sol in solutions for spec in self.specs_for(sol)]
        )

    def prefetch_uniform(self, pairs: Sequence[SchedulerPair]) -> None:
        self.prefetch(
            Solution.uniform(pair, self.config.n_phases) for pair in pairs
        )

    def uniform_specs(self, pairs: Sequence[SchedulerPair]) -> List[RunSpec]:
        return [
            spec
            for pair in pairs
            for spec in self.specs_for(
                Solution.uniform(pair, self.config.n_phases)
            )
        ]


class SweepJobRunner(_SweepRunnerBase):
    """Drop-in :class:`~repro.core.experiment.JobRunner` over the sweep."""

    config: TestbedConfig

    def specs_for(self, solution: Solution) -> List[RunSpec]:
        return [
            RunSpec(
                kind="job",
                seed=seed,
                config=(self.config.with_(seeds=(seed,)), solution),
                label=self._label(solution, seed),
            )
            for seed in self.config.seeds
        ]

    def _assemble(self, solution: Solution, payloads: List[dict]) -> RunOutcome:
        decoded = [decode_job_result(p) for p in payloads]
        return RunOutcome(
            solution=solution,
            results=[result for result, _ in decoded],
            switch_stalls=[stall for _, stall in decoded],
        )


class SweepChainRunner(_SweepRunnerBase):
    """Drop-in :class:`~repro.core.chains.ChainRunner` over the sweep."""

    config: ChainConfig

    def specs_for(self, solution: Solution) -> List[RunSpec]:
        return [
            RunSpec(
                kind="chain",
                seed=seed,
                config=(replace(self.config, seeds=(seed,)), solution),
                label=self._label(solution, seed),
            )
            for seed in self.config.seeds
        ]

    def _assemble(self, solution: Solution, payloads: List[dict]) -> ChainOutcome:
        return ChainOutcome(
            solution=solution,
            durations=[p["duration"] for p in payloads],
            phase_rows=[tuple(p["phases"]) for p in payloads],
        )
