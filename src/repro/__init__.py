"""repro — Adaptive Disk I/O Scheduling for MapReduce in Virtualized
Environments (Ibrahim et al., ICPP 2011), reproduced in simulation.

The package layers, bottom-up:

* :mod:`repro.sim` — discrete-event kernel (processes, resources, CPU,
  RNG streams, tracing);
* :mod:`repro.disk` — positional disk model and block devices;
* :mod:`repro.iosched` — the four Linux elevators + hot switching;
* :mod:`repro.virt` — DomU/Dom0 two-level I/O stack, page cache, cluster;
* :mod:`repro.net` — max-min fair flow network;
* :mod:`repro.hdfs` / :mod:`repro.mapreduce` — the Hadoop substrate;
* :mod:`repro.workloads` — the paper's benchmarks;
* :mod:`repro.core` — the contribution: phase plans, Algorithm 1,
  switch-cost measurement, the adaptive meta-scheduler;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import quick_adaptive_report
    report = quick_adaptive_report("sort")
    print(report.summary())
"""

__version__ = "1.3.0"

from .api import (
    MultiJobScenario,
    RunResult,
    Scenario,
    scaled_testbed,
    simulate,
    sweep,
)
from .core import (
    AdaptiveMetaScheduler,
    AdaptiveReport,
    JobRunner,
    Solution,
    SwitchCostMeter,
    TestbedConfig,
)
from .mapreduce import JobConfig, JobResult, JobSpec
from .runner import RunSpec, SweepJobRunner, SweepRunner, SweepStats
from .virt import ClusterConfig, SchedulerPair, VirtualCluster, all_pairs
from .workloads import BENCHMARKS, benchmark

__all__ = [
    "AdaptiveMetaScheduler",
    "AdaptiveReport",
    "BENCHMARKS",
    "ClusterConfig",
    "JobConfig",
    "JobRunner",
    "JobResult",
    "JobSpec",
    "MultiJobScenario",
    "RunResult",
    "RunSpec",
    "Scenario",
    "SchedulerPair",
    "Solution",
    "SweepJobRunner",
    "SweepRunner",
    "SweepStats",
    "SwitchCostMeter",
    "TestbedConfig",
    "VirtualCluster",
    "all_pairs",
    "benchmark",
    "quick_adaptive_report",
    "scaled_testbed",
    "simulate",
    "sweep",
    "__version__",
]


def quick_adaptive_report(benchmark_name: str = "sort", scale: float = 0.125,
                          seeds=(0,)) -> "AdaptiveReport":
    """One-call demo: profile + Algorithm 1 on a scaled testbed.

    ``scale`` shrinks the paper's data sizes (0.125 → 64 MB per VM) so
    the whole pipeline runs in minutes; the winning pairs and the shape
    of the gains are scale-stable (see EXPERIMENTS.md).
    """
    from .api import scaled_testbed

    config = scaled_testbed(benchmark(benchmark_name), scale=scale, seeds=seeds)
    return AdaptiveMetaScheduler(config).report()
