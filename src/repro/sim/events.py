"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-graph design (as popularised by
SimPy): an :class:`Event` moves through three states — *pending* (created
but not yet triggered), *triggered* (scheduled on the environment's event
heap with a value or an exception) and *processed* (its callbacks have
run).  Simulation processes (see :mod:`repro.sim.process`) suspend by
yielding events and are resumed when those events are processed.

Only the pieces needed by the repro stack are implemented, but they are
implemented completely: value/exception propagation, composite
conditions (``AllOf``/``AnyOf``) and process interruption.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .core import Environment

__all__ = [
    "PENDING",
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "StopProcess",
    "Timeout",
]

#: Sentinel for an event that has not been triggered yet.
PENDING = object()

#: Scheduling priorities.  Urgent events (process interrupts) run before
#: normal events scheduled for the same timestamp.
URGENT = 0
NORMAL = 1

#: Heap entries are ``(time, key, event)`` where ``key`` packs the
#: priority above the insertion counter (eids stay far below 2**52), so
#: ordering is (time, priority, eid) with one tuple element less to
#: allocate and compare per scheduled event.
KEY_SHIFT = 52
NORMAL_KEY = NORMAL << KEY_SHIFT


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available both as ``exc.cause`` and as
    ``exc.args[0]``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """Arbitrary object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class StopProcess(Exception):
    """Raised by :func:`repro.sim.process.Process.exit` to return early."""

    def __init__(self, value: Any = None):
        super().__init__(value)

    @property
    def value(self) -> Any:
        return self.args[0]


class Event:
    """An event that may happen at some point in simulated time.

    Callbacks are callables taking the event itself; they run when the
    environment pops the event off the heap.  After that the event is
    *processed* and its :attr:`value` is final.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked when the event is processed.  ``None`` once
        #: the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.__class__.__name__} {self._describe()} at {id(self):#x}>"

    def _describe(self) -> str:
        if self._value is PENDING:
            return "pending"
        state = "ok" if self._ok else "failed"
        return f"triggered/{state} value={self._value!r}"

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, NORMAL_KEY | eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on this
        event.  If no process waits on it, the environment raises it at
        the next step unless :meth:`defused` is set.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, NORMAL_KEY | eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the environment won't raise."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's hottest allocation: initialise the
        # Event slots and push onto the heap directly instead of paying
        # super().__init__ plus env.schedule per yield.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + delay, NORMAL_KEY | eid, self))

    def _describe(self) -> str:
        return f"delay={self.delay}"


class Condition(Event):
    """Composite event over several sub-events.

    Triggers when ``evaluate(events, count)`` returns true, where
    ``count`` is the number of sub-events already processed.  The value
    is a dict mapping each *processed* sub-event to its value, in the
    order the events were given.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events: List[Event] = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Evaluate immediately in case all sub-events already happened.
        if self._evaluate(self._events, sum(1 for e in self._events if e.processed)):
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._on_sub_event(event)
            else:
                event.callbacks.append(self._on_sub_event)

    def _collect(self) -> dict:
        # Only sub-events whose callbacks already ran belong to the value:
        # an AnyOf over (t=1, t=3) must not report the t=3 timeout, even
        # though Timeout instances are "triggered" from birth.
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _on_sub_event(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers when all of ``events`` have triggered successfully."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers as soon as any of ``events`` has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
