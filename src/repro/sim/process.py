"""Generator-based simulation processes."""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import PENDING, URGENT, Event, Interrupt, StopProcess

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Process"]


class Process(Event):
    """A process wraps a generator that yields events to wait on.

    The process itself is an event that triggers when the generator
    returns (its value is the ``return`` value) or raises.  Processes
    can be interrupted with :meth:`interrupt`, which raises
    :class:`~repro.sim.events.Interrupt` inside the generator.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        # Event slots initialised inline (processes are created in bulk
        # on the job hot path; skipping super().__init__ is measurable).
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        # Bound methods cached once: _resume runs for every yield in the
        # simulation, so the attribute lookups add up.
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on (None when the
        #: process is being resumed or has finished).
        self._target: Optional[Event] = None

        # Kick the process off with an immediately-processed event,
        # pushed straight onto the heap (URGENT is 0, so the packed heap
        # key is just the eid).
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, eid, init))

    def _describe(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"{name} ({super()._describe()})"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process as soon as possible."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None and self._generator.gi_frame is not None and self._generator.gi_running:
            raise RuntimeError("a process cannot interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defuse()
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, URGENT)

    @staticmethod
    def exit(value: Any = None) -> None:
        """Stop the current process, optionally with a return value."""
        raise StopProcess(value)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # A stale interrupt may arrive after the process has finished.
        if self._value is not PENDING:
            return

        # Detach from the event we were waiting on (if resuming due to an
        # interrupt while a different event is still outstanding).
        target = self._target
        if target is not None and target is not event:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass

        self._target = None
        while True:
            try:
                if event._ok:
                    next_target = self._send(event._value)
                else:
                    # The exception was consumed by handing it to the
                    # process; mark it so the environment doesn't raise.
                    event.defuse()
                    next_target = self._throw(event._value)
            except StopProcess as stop:
                self.succeed(stop.value)
                return
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return

            if not isinstance(next_target, Event):
                exc = RuntimeError(
                    f"process {self!r} yielded a non-event: {next_target!r}"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as raised:
                    self.fail(raised)
                    return
                continue

            if next_target.callbacks is not None:
                # Not yet processed: wait for it.
                next_target.callbacks.append(self._resume)
                self._target = next_target
                return

            # Already processed: loop immediately with its outcome.
            event = next_target
