"""Discrete-event simulation kernel underpinning the repro stack.

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.0)
        return "done"
    p = env.process(proc(env))
    env.run()
"""

from .core import EmptySchedule, Environment, StopSimulation
from .cpu import CPUJob, ProcessorSharingCPU
from .events import AllOf, AnyOf, Condition, Event, Interrupt, StopProcess, Timeout
from .process import Process
from .resources import Release, Request, Resource, Store, StoreGet, StorePut
from .rng import RngStreams
from .tracing import IntervalSampler, TraceBus, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "CPUJob",
    "Condition",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "IntervalSampler",
    "Process",
    "ProcessorSharingCPU",
    "Release",
    "Request",
    "Resource",
    "RngStreams",
    "StopProcess",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "TraceBus",
    "TraceRecord",
]
