"""Deterministic, named random-number streams.

Every stochastic component draws from its own stream derived from the
experiment's root seed and a stable component name, so adding a new
consumer never perturbs existing ones — essential for the calibrated
shape checks in EXPERIMENTS.md and for the paper's "average of three
runs" methodology (three root seeds).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "fallback_rng"]


def fallback_rng() -> np.random.Generator:
    """The fixed-seed generator components default to when none is wired.

    Several components accept an optional ``rng`` and historically fell
    back to ``np.random.default_rng(0)`` inline.  Centralising that
    fallback here keeps every generator construction inside this module
    (the DET002 lint contract) while producing the bit-identical stream
    the inline literal did.  Real runs always inject per-component
    streams from :class:`RngStreams`; the fallback only feeds unit
    tests that build components stand-alone.
    """
    return np.random.default_rng(0)


class RngStreams:
    """Factory for named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 gives a stable 32-bit hash of the name across runs
            # (Python's hash() is salted per process).
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.root_seed, child]))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Derive an independent child factory (e.g. per host)."""
        child_seed = zlib.crc32(name.encode("utf-8")) ^ (self.root_seed * 2654435761 % 2**32)
        return RngStreams(child_seed)
