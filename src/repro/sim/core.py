"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from .events import NORMAL, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds*.  Events scheduled for the same time
    are ordered by priority then insertion order, which makes runs fully
    deterministic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Environment t={self._now:.6f} pending={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put ``event`` on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event on the heap."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            exc = event._value
            # An unhandled failure crashes the simulation: nothing waited
            # on this event, so silently dropping it would hide bugs.
            raise exc

    # -- run loop ------------------------------------------------------------
    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the heap is empty), a number
        (run until that simulated time) or an :class:`Event` (run until
        it is processed; its value is returned).
        """
        at_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                at_event = until
                if at_event.callbacks is None:
                    # Already processed.
                    return at_event.value
                at_event.callbacks.append(self._stop_at)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stopper = Event(self)
                stopper._ok = True
                stopper._value = None
                stopper.callbacks.append(self._stop_at)
                self.schedule(stopper, NORMAL, at - self._now)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            ended_event = stop.args[0]
            if at_event is not None:
                if not at_event.ok:
                    raise at_event.value
                return at_event.value
            return None
        except EmptySchedule:
            if at_event is not None and not at_event.triggered:
                raise RuntimeError(
                    f"simulation ran out of events before {at_event!r} triggered"
                ) from None
            return None

    @staticmethod
    def _stop_at(event: Event) -> None:
        raise StopSimulation(event)
