"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

from .events import KEY_SHIFT, NORMAL, Event, Timeout
from .process import Process

if TYPE_CHECKING:  # pragma: no cover
    from .tracing import TraceBus

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "start_event_census",
    "finish_event_census",
]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


#: When a census is active, every Environment constructed registers
#: itself here so callers (the bench harness) can total the events
#: processed across all environments a run created.
_census: Optional[List["Environment"]] = None


def start_event_census() -> None:
    """Begin collecting environments for an event count (bench harness)."""
    global _census
    _census = []


def finish_event_census() -> int:
    """Stop the census; return total events processed by all collected
    environments since their construction."""
    global _census
    envs, _census = _census, None
    return sum(env.events_processed for env in envs or ())


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds*.  Events scheduled for the same time
    are ordered by priority then insertion order, which makes runs fully
    deterministic.

    ``trace`` optionally attaches a :class:`~repro.sim.tracing.TraceBus`
    to the environment at construction, so components built on the same
    environment can share one bus without post-hoc attribute attachment.
    """

    def __init__(self, initial_time: float = 0.0,
                 trace: Optional["TraceBus"] = None):
        self._now = float(initial_time)
        #: Heap of ``(time, priority<<KEY_SHIFT | eid, event)`` entries.
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        #: Events processed (heap pops) over this environment's lifetime.
        self.events_processed = 0
        #: Optional TraceBus shared by components on this environment.
        self.trace = trace
        if _census is not None:
            _census.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Environment t={self._now:.6f} pending={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put ``event`` on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self._now + delay, (priority << KEY_SHIFT) | eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event on the heap."""
        try:
            self._now, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the simulation: nothing waited
            # on this event, so silently dropping it would hide bugs.
            raise event._value

    # -- run loop ------------------------------------------------------------
    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the heap is empty), a number
        (run until that simulated time) or an :class:`Event` (run until
        it is processed; its value is returned).
        """
        at_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                at_event = until
                if at_event.callbacks is None:
                    # Already processed.
                    return at_event.value
                at_event.callbacks.append(self._stop_at)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stopper = Event(self)
                stopper._ok = True
                stopper._value = None
                stopper.callbacks.append(self._stop_at)
                self.schedule(stopper, NORMAL, at - self._now)

        # The hot loop: step() inlined so each event costs one heap pop
        # and its callbacks, without a Python method call per event.
        queue = self._queue
        pop = heappop
        events = self.events_processed
        try:
            while True:
                try:
                    self._now, _, event = pop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                events += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation:
            if at_event is not None:
                if not at_event.ok:
                    raise at_event.value
                return at_event.value
            return None
        except EmptySchedule:
            if at_event is not None and not at_event.triggered:
                raise RuntimeError(
                    f"simulation ran out of events before {at_event!r} triggered"
                ) from None
            return None
        finally:
            self.events_processed = events

    @staticmethod
    def _stop_at(event: Event) -> None:
        raise StopSimulation(event)
