"""Shared-resource primitives: counted resources and object stores."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Request", "Release", "Resource", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """Pending acquisition of one slot of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel() if not self.triggered else self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        try:
            self.resource._queue.remove(self)
        except ValueError:
            pass


class Release(Event):
    """Immediately-successful release event (for symmetry with SimPy)."""

    __slots__ = ()


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for one slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            raise RuntimeError("releasing a request that does not hold the resource")
        self._trigger_requests()
        release = Release(self.env)
        release.succeed()
        return release

    def _trigger_requests(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            self._users.append(req)
            req.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._dispatch()


class Store:
    """An unbounded-or-bounded FIFO store of arbitrary items.

    ``get`` accepts an optional filter predicate (a *FilterStore* in
    SimPy terms) used by e.g. the shuffle service to pull matching map
    outputs.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; blocks (as an event) while the store is full."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return an item (optionally the first matching one)."""
        return StoreGet(self, filter)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False

            # Admit puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True

            # Satisfy gets with matching items.
            pending: Deque[StoreGet] = deque()
            while self._get_queue:
                get = self._get_queue.popleft()
                idx = self._find(get.filter)
                if idx is None:
                    pending.append(get)
                else:
                    get.succeed(self.items.pop(idx))
                    progressed = True
            self._get_queue = pending

    def _find(self, filter: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filter(item):
                return i
        return None
