"""A processor-sharing CPU model.

Virtual CPUs run several Map/Reduce tasks concurrently; the kernel's
scheduler gives each runnable thread an equal share.  Rather than
simulating quantum-by-quantum, this model recomputes completion times
analytically whenever the set of running jobs changes (the standard
event-driven treatment of an egalitarian processor-sharing queue),
which is both exact and far cheaper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["ProcessorSharingCPU", "CPUJob"]


class CPUJob(Event):
    """Completion event for a unit of work submitted to a CPU."""

    __slots__ = ("work", "remaining", "label")

    def __init__(self, env: "Environment", work: float, label: Any = None):
        super().__init__(env)
        self.work = float(work)
        self.remaining = float(work)
        self.label = label


class ProcessorSharingCPU:
    """An egalitarian processor-sharing server.

    ``capacity`` is in abstract work units per second; a job of ``work``
    units alone on the CPU takes ``work / capacity`` seconds, and *n*
    concurrent jobs each proceed at ``capacity / n``.
    """

    def __init__(self, env: "Environment", capacity: float = 1.0, name: str = "cpu"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._jobs: Dict[int, CPUJob] = {}
        self._jid = 0
        self._last_update = env.now
        self._generation = 0
        self._paused = False
        #: Total work completed (for utilisation accounting).
        self.completed_work = 0.0
        self.busy_time = 0.0

    @property
    def load(self) -> int:
        """Number of jobs currently sharing the CPU."""
        return len(self._jobs)

    def execute(self, work: float, label: Any = None) -> CPUJob:
        """Submit ``work`` units; the returned event fires on completion.

        Zero-work jobs complete immediately (at the next event step).
        """
        if work < 0:
            raise ValueError(f"negative work {work}")
        job = CPUJob(self.env, work, label)
        if work == 0:
            job.succeed()
            return job
        self._advance()
        self._jid += 1
        self._jobs[self._jid] = job
        self._reschedule()
        return job

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Freeze the CPU: running jobs stop accruing progress.

        Models a hypervisor-level VM pause — the vCPU is descheduled,
        so in-flight work neither completes nor advances until
        :meth:`resume`.  Jobs submitted while paused queue up and start
        sharing the CPU on resume.
        """
        if self._paused:
            return
        self._advance()
        self._paused = True
        # Invalidate any scheduled completion wakeups.
        self._generation += 1

    def resume(self) -> None:
        """Unfreeze the CPU; progress accrual restarts from now."""
        if not self._paused:
            return
        self._paused = False
        self._last_update = self.env.now
        self._reschedule()

    # -- internals -----------------------------------------------------------
    def _advance(self) -> None:
        """Charge elapsed progress to every running job."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if self._paused or dt <= 0 or not self._jobs:
            return
        rate = self.capacity / len(self._jobs)
        done = dt * rate
        self.busy_time += dt
        for job in self._jobs.values():
            job.remaining -= done
            # Guard against accumulation error; completions are handled in
            # _reschedule via the wakeup event.
            if job.remaining < 0:
                job.remaining = 0.0

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest next completion."""
        self._generation += 1
        if self._paused or not self._jobs:
            return
        gen = self._generation
        rate = self.capacity / len(self._jobs)
        min_remaining = min(job.remaining for job in self._jobs.values())
        delay = min_remaining / rate
        wakeup = self.env.timeout(delay)
        wakeup.callbacks.append(lambda _ev, gen=gen: self._on_wakeup(gen))

    def _on_wakeup(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later arrival/completion
        self._advance()
        eps = 1e-12
        finished = [jid for jid, job in self._jobs.items() if job.remaining <= eps]
        for jid in finished:
            job = self._jobs.pop(jid)
            self.completed_work += job.work
            job.succeed()
        self._reschedule()
