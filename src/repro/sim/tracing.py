"""A lightweight publish/subscribe trace bus and time-series samplers.

Experiments subscribe to topics ("disk.complete", "job.maps_done", ...)
to build CDFs and timelines without the simulated components knowing
about the instrumentation.  The observability layer (:mod:`repro.obs`)
records whole topic families with ``record_topic("disk.*")`` or
``record_topic("*")`` and exports the records after the run.

The canonical list of topics the simulator publishes lives in
:mod:`repro.obs.topics` (the registry ``repro lint``'s TRACE001 rule
enforces); :func:`known_topics` returns it without making this module —
which sits *below* the obs layer — depend on obs at import time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, FrozenSet, List, Tuple

__all__ = ["TraceBus", "TraceRecord", "IntervalSampler", "known_topics"]


def known_topics() -> FrozenSet[str]:
    """Every registered topic name, from :mod:`repro.obs.topics`.

    Imported lazily: obs depends on this module, so the reverse edge
    must not run at import time.
    """
    from ..obs.topics import REGISTERED_TOPICS

    return REGISTERED_TOPICS


@dataclass(frozen=True)
class TraceRecord:
    """One published trace event."""

    time: float
    topic: str
    payload: Dict[str, Any]


class TraceBus:
    """Topic-based pub/sub with optional in-memory recording."""

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Callable[[TraceRecord], None]]] = defaultdict(list)
        self._recorded_topics: set[str] = set()
        #: Prefixes registered via ``record_topic("family.*")``.
        self._recorded_prefixes: List[str] = []
        self._record_all = False
        #: Streaming consumers of *recorded* records (see :meth:`add_sink`).
        self._sinks: List[Callable[[TraceRecord], None]] = []
        #: When ``False``, matched records are delivered to sinks only and
        #: never accumulate in :attr:`records` — the memory-bounded mode
        #: the capture spiller runs in.
        self.retain_records = True
        self.records: List[TraceRecord] = []
        #: Per-topic view of ``records`` so ``recorded(topic)`` does not
        #: rescan every record ever published.
        self._by_topic: DefaultDict[str, List[TraceRecord]] = defaultdict(list)
        #: Memoised _should_record decisions, one per topic seen; reset
        #: whenever record_topic() widens the recorded set.  This keeps
        #: publish() on un-recorded topics a cheap dict probe instead of
        #: a prefix scan per event.
        self._keep_cache: Dict[str, bool] = {}

    def subscribe(self, topic: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every record published on ``topic``.

        Subscribing the same callback twice is allowed and means two
        invocations per record (mirroring signal/slot conventions);
        each registration needs its own :meth:`unsubscribe`.
        """
        self._subscribers[topic].append(callback)

    def unsubscribe(self, topic: str, callback: Callable[[TraceRecord], None]) -> None:
        """Remove one registration of ``callback`` from ``topic``.

        Safe to call from inside a callback during :meth:`publish` —
        the in-flight publication still delivers to the subscriber list
        as it stood when the record was published.
        """
        try:
            self._subscribers[topic].remove(callback)
        except ValueError:
            raise KeyError(
                f"callback not subscribed to topic {topic!r}"
            ) from None

    def record_topic(self, topic: str) -> None:
        """Keep all records for ``topic`` in :attr:`records`.

        ``topic`` may be an exact name (``"disk.complete"``), a family
        glob (``"disk.*"``, matching every topic under the prefix), or
        ``"*"`` to record everything published.

        Recording starts at the time of this call: records published on
        ``topic`` beforehand were dropped (publish is a no-op without
        listeners) and are *not* retroactively recovered, but earlier
        records delivered to subscribers of other recorded topics are
        unaffected.  Calling this twice is a no-op.
        """
        if topic == "*":
            self._record_all = True
        elif topic.endswith(".*"):
            prefix = topic[:-1]  # keep the dot: "disk.*" -> "disk."
            if prefix not in self._recorded_prefixes:
                self._recorded_prefixes.append(prefix)
        else:
            self._recorded_topics.add(topic)
        self._keep_cache.clear()

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Stream every record matched by the recorded-topic config to
        ``sink``, in publication order.

        Sinks see exactly the records :attr:`records` would have kept —
        same topic filter, same order — which is what lets a disk
        spiller replace in-memory buffering byte-for-byte.  Setting
        :attr:`retain_records` to ``False`` alongside makes the bus
        itself O(1) in run length.
        """
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            raise KeyError("sink not attached to this bus") from None

    def _should_record(self, topic: str) -> bool:
        if self._record_all or topic in self._recorded_topics:
            return True
        return any(topic.startswith(p) for p in self._recorded_prefixes)

    def clear(self) -> None:
        """Drop all recorded records; keep subscriptions and topic config.

        Long sweeps call this between jobs to bound memory: the bus keeps
        recording the same topics afterwards, from an empty buffer.
        """
        self.records.clear()
        self._by_topic.clear()

    def wants(self, topic: str) -> bool:
        """True when publishing on ``topic`` would reach a recorder or
        subscriber — lets hot call sites skip building the payload."""
        if self._subscribers.get(topic):
            return True
        keep = self._keep_cache.get(topic)
        if keep is None:
            keep = self._keep_cache[topic] = self._should_record(topic)
        return keep

    def publish(self, time: float, topic: str, **payload: Any) -> None:
        """Publish a record; cheap no-op when nobody listens."""
        subs = self._subscribers.get(topic)
        keep = self._keep_cache.get(topic)
        if keep is None:
            keep = self._keep_cache[topic] = self._should_record(topic)
        if not subs and not keep:
            return
        record = TraceRecord(time, topic, payload)
        if keep:
            if self.retain_records:
                self.records.append(record)
                self._by_topic[topic].append(record)
            for sink in self._sinks:
                sink(record)
        if subs:
            # Iterate a snapshot so callbacks may subscribe/unsubscribe
            # (previously this crashed with "list modified during
            # iteration" when a callback unsubscribed itself).
            for callback in tuple(subs):
                callback(record)

    def recorded(self, topic: str) -> List[TraceRecord]:
        """All recorded records for ``topic`` in publication order."""
        return list(self._by_topic.get(topic, ()))


@dataclass
class IntervalSampler:
    """Accumulates a quantity and emits per-interval rates.

    Used for I/O throughput CDFs: add bytes as transfers complete, then
    :meth:`series` yields MB/s samples over fixed windows, matching how
    ``iostat`` would have sampled the paper's testbed.
    """

    interval: float = 1.0
    _events: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, amount: float) -> None:
        self._events.append((time, amount))

    def series(self, start: float = 0.0, end: float | None = None) -> List[float]:
        """Per-interval sums of ``amount`` between ``start`` and ``end``.

        The window is covered by ``ceil((end - start) / interval)`` bins;
        when the span divides evenly there is *no* extra trailing bin —
        events at exactly ``t == end`` are clamped into the last full bin
        (previously they opened a spurious final bin that diluted
        :meth:`rates`).
        """
        if not self._events:
            return []
        if end is None:
            end = max(t for t, _ in self._events)
        if end <= start:
            return []
        span = (end - start) / self.interval
        n_bins = int(span)
        # Tolerate float noise on exact multiples (e.g. 3.0000000000004).
        if span - n_bins > 1e-9 or n_bins == 0:
            n_bins += 1
        bins = [0.0] * n_bins
        for t, amount in self._events:
            if t < start or t > end:
                continue
            idx = min(int((t - start) / self.interval), n_bins - 1)
            bins[idx] += amount
        return bins

    def rates(self, start: float = 0.0, end: float | None = None) -> List[float]:
        """Per-interval rates (``amount`` per second)."""
        return [b / self.interval for b in self.series(start, end)]
