"""The paper's three benchmark profiles.

Section III-A classifies MapReduce applications by disk-operation
weight and picks one representative each:

* **wordcount (with combiner)** — *light*: the combiner collapses the
  map output, so spill/shuffle volume is a small fraction of the input;
  CPU-heavy (tokenising + counting).
* **wordcount w/o combiner** — *moderate*: map output ≈ 1.7× the input
  (the paper's figure) all of which hits disk and the network, but the
  reduce output (word counts) stays tiny.
* **sort (stream sort)** — *heavy*: map output = input, reduce output =
  input, written twice (2 replicas); minimal CPU.
"""

from __future__ import annotations

from typing import Dict

from ..mapreduce.job import JobSpec

__all__ = [
    "WORDCOUNT",
    "WORDCOUNT_NO_COMBINER",
    "SORT",
    "BENCHMARKS",
    "benchmark",
]

WORDCOUNT = JobSpec(
    name="wordcount",
    emit_ratio=1.7,
    map_output_ratio=0.08,
    reduce_output_ratio=0.3,
    combiner=True,
    # Tokenising + counting makes wordcount CPU-bound on a 1-core VM
    # (the paper's Fig. 2-a variation is only ~1.5% because the disk is
    # rarely the bottleneck).
    map_cpu_s_per_mb=0.500,
    combine_cpu_s_per_mb=0.050,
    sort_cpu_s_per_mb=0.006,
    reduce_cpu_s_per_mb=0.050,
)

WORDCOUNT_NO_COMBINER = JobSpec(
    name="wordcount-nocombiner",
    emit_ratio=1.7,
    map_output_ratio=1.7,
    reduce_output_ratio=0.015,
    combiner=False,
    # Same map function as wordcount, but 1.7x the input lands on disk
    # and the network — disk returns as a co-bottleneck (the paper's
    # "moderate" class, 29% variation).
    map_cpu_s_per_mb=0.500,
    sort_cpu_s_per_mb=0.006,
    reduce_cpu_s_per_mb=0.050,
)

SORT = JobSpec(
    name="sort",
    emit_ratio=1.0,
    map_output_ratio=1.0,
    reduce_output_ratio=1.0,
    combiner=False,
    map_cpu_s_per_mb=0.010,
    sort_cpu_s_per_mb=0.006,
    reduce_cpu_s_per_mb=0.008,
)

BENCHMARKS: Dict[str, JobSpec] = {
    spec.name: spec for spec in (WORDCOUNT, WORDCOUNT_NO_COMBINER, SORT)
}


def benchmark(name: str) -> JobSpec:
    """Look up a benchmark profile by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None
