"""Sysbench fileio sequential-write workload (paper Fig. 1).

"Using Sysbench to create in parallel one process per each VM to
sequentially write 1 GB to 16 files."  Each VM runs one writer that
streams 1 GB across 16 files through the page cache and fsyncs each
file (sysbench's default ``--file-fsync-all`` cadence approximated as
an fsync per file), so the measured elapsed time covers the data
actually reaching the virtual disk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..sim.events import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..virt.cluster import VirtualCluster
    from ..virt.vm import VM

__all__ = ["SysbenchSeqWrite", "sysbench_writer"]

MB = 1024 * 1024


def sysbench_writer(vm: "VM", total_bytes: int = 1024 * MB, n_files: int = 16,
                    io_chunk: int = 4 * MB, tag: str = "sysbench"):
    """Generator: one VM's sequential-write benchmark run."""
    per_file = total_bytes // n_files
    pid = f"{tag}@{vm.vm_id}"
    for i in range(n_files):
        f = vm.create_file(f"{tag}_{i}", per_file)
        pos = 0
        while pos < per_file:
            chunk = min(io_chunk, per_file - pos)
            yield from vm.write_file(f, pos, chunk, pid)
            pos += chunk
        yield from vm.fsync(f, pid)


class SysbenchSeqWrite:
    """Run the benchmark on the first ``n`` VMs of each host in parallel."""

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        total_bytes: int = 1024 * MB,
        n_files: int = 16,
        vms_per_host: Optional[int] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.total_bytes = total_bytes
        self.n_files = n_files
        self.vms_per_host = vms_per_host

    def start(self):
        """Launch; the returned process value is the elapsed seconds."""
        return self.env.process(self._run())

    def _run(self):
        start = self.env.now
        procs: List = []
        for host in self.cluster.hosts:
            vms = host.vms
            if self.vms_per_host is not None:
                vms = vms[: self.vms_per_host]
            for vm in vms:
                procs.append(
                    self.env.process(
                        sysbench_writer(vm, self.total_bytes, self.n_files)
                    )
                )
        if procs:
            yield AllOf(self.env, procs)
        return self.env.now - start
