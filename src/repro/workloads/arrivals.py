"""Multi-tenant job arrival streams for the consolidated cluster.

The paper's experiments run one job at a time; a consolidated cluster
sees a *stream* of jobs from several tenants.  This module generates
that stream as pure data: a :class:`ArrivalConfig` describes the
process (Poisson or an explicit trace, a tenant mix, a heavy-tailed
job-size mix) and :func:`generate_arrivals` expands it into concrete
:class:`JobArrival`s using an injected RNG stream, so the schedule is a
deterministic function of ``(config, seed)`` exactly like every other
simulation input.

Nothing here touches the simulator: the multi-job control plane
(:mod:`repro.mapreduce.multijob`) consumes the generated arrivals and
admits jobs at their times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "ArrivalConfig",
    "DEFAULT_SIZE_MIX",
    "JobArrival",
    "SizeClass",
    "TraceArrival",
    "generate_arrivals",
]


@dataclass(frozen=True)
class SizeClass:
    """One bucket of the job-size mix.

    ``bytes_factor`` multiplies the template job's per-VM input bytes;
    ``weight`` is the (unnormalised) probability of drawing this class.
    """

    name: str
    weight: float
    bytes_factor: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("size-class weight must be non-negative")
        if self.bytes_factor <= 0:
            raise ValueError("size-class bytes_factor must be positive")


#: A heavy-tailed mix in the spirit of production MapReduce traces:
#: mostly small jobs, a fat tail of big ones.
DEFAULT_SIZE_MIX: Tuple[SizeClass, ...] = (
    SizeClass("small", weight=0.6, bytes_factor=0.5),
    SizeClass("medium", weight=0.3, bytes_factor=1.0),
    SizeClass("large", weight=0.1, bytes_factor=2.0),
)


@dataclass(frozen=True)
class TraceArrival:
    """One explicit entry of a trace-driven arrival schedule."""

    time: float
    tenant: str
    size_class: str = "medium"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("trace arrival time must be non-negative")


@dataclass(frozen=True)
class ArrivalConfig:
    """A declarative multi-tenant arrival process (pure data).

    ``kind="poisson"`` draws exponential interarrival gaps at ``rate``
    jobs per simulated second and assigns tenants/size classes by
    weighted draw; ``kind="trace"`` replays the explicit ``trace``
    entries (``n_jobs``/``rate``/weights are ignored).  Built from
    dataclasses, tuples, and scalars only, so it canonicalises into the
    sweep cache key unchanged.
    """

    kind: str = "poisson"
    n_jobs: int = 3
    #: Mean arrival rate, jobs per simulated second (Poisson only).
    rate: float = 0.02
    tenants: Tuple[str, ...] = ("tenant-a", "tenant-b")
    #: Unnormalised per-tenant weights; empty = uniform.
    tenant_weights: Tuple[float, ...] = ()
    size_classes: Tuple[SizeClass, ...] = DEFAULT_SIZE_MIX
    trace: Tuple[TraceArrival, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "trace"):
            raise ValueError(
                f"arrival kind must be 'poisson' or 'trace', got {self.kind!r}"
            )
        if self.kind == "poisson":
            if self.n_jobs < 1:
                raise ValueError("n_jobs must be >= 1")
            if self.rate <= 0:
                raise ValueError("rate must be positive")
            if not self.tenants:
                raise ValueError("at least one tenant is required")
            if self.tenant_weights and (
                len(self.tenant_weights) != len(self.tenants)
            ):
                raise ValueError(
                    "tenant_weights must match tenants "
                    f"({len(self.tenant_weights)} != {len(self.tenants)})"
                )
            if not self.size_classes:
                raise ValueError("at least one size class is required")
            names = [sc.name for sc in self.size_classes]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate size-class names in {names}")
        else:
            if not self.trace:
                raise ValueError("trace arrivals need at least one entry")
            times = [entry.time for entry in self.trace]
            if times != sorted(times):
                raise ValueError("trace entries must be time-ordered")
            known = [sc.name for sc in self.size_classes]
            for entry in self.trace:
                if entry.size_class not in known:
                    raise ValueError(
                        f"trace entry names unknown size class "
                        f"{entry.size_class!r} (have {known})"
                    )


@dataclass(frozen=True)
class JobArrival:
    """One concrete job submission: when, whose, and how big."""

    job_id: int
    time: float
    tenant: str
    size_class: SizeClass


def _weighted_index(weights: List[float], draw: float) -> int:
    """Index of the bucket a uniform ``draw`` in [0, 1) lands in."""
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w / total
        if draw < acc:
            return i
    return len(weights) - 1  # float round-off: clamp to the last bucket


def generate_arrivals(
    config: ArrivalConfig, rng: np.random.Generator
) -> Tuple[JobArrival, ...]:
    """Expand an :class:`ArrivalConfig` into concrete arrivals.

    ``rng`` must be an injected stream (e.g.
    ``cluster.rng.stream("workload.arrivals")``): this module never
    constructs generators, so the schedule is seed-deterministic.  The
    draw order is fixed — gap, tenant, size per job — making the output
    independent of how callers consume it.
    """
    if config.kind == "trace":
        by_name = {sc.name: sc for sc in config.size_classes}
        return tuple(
            JobArrival(job_id=i, time=entry.time, tenant=entry.tenant,
                       size_class=by_name[entry.size_class])
            for i, entry in enumerate(config.trace)
        )

    tenant_weights = list(config.tenant_weights) or [1.0] * len(config.tenants)
    size_weights = [sc.weight for sc in config.size_classes]
    arrivals = []
    now = 0.0
    for job_id in range(config.n_jobs):
        now += float(rng.exponential(1.0 / config.rate))
        tenant = config.tenants[
            _weighted_index(tenant_weights, float(rng.random()))
        ]
        size = config.size_classes[
            _weighted_index(size_weights, float(rng.random()))
        ]
        arrivals.append(
            JobArrival(job_id=job_id, time=now, tenant=tenant, size_class=size)
        )
    return tuple(arrivals)
