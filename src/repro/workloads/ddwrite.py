"""The ``dd`` zero-write workload used to measure switch costs (Fig. 5).

"We start a dd command that writes 600 MB of zeroes from /dev/zero to a
file in parallel on four machines within the same physical machine."
The file is flushed at the end so the elapsed time covers the full data
volume (``conv=fsync`` semantics), making the paper's cost formula
well-defined.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..sim.events import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..virt.hypervisor import PhysicalHost
    from ..virt.vm import VM

__all__ = ["dd_writer", "DdParallelWrite"]

MB = 1024 * 1024


def dd_writer(vm: "VM", nbytes: int = 600 * MB, io_chunk: int = 4 * MB,
              tag: str = "dd"):
    """Generator: one VM's dd run (buffered writes + final fsync)."""
    pid = f"{tag}@{vm.vm_id}"
    f = vm.create_file(f"{tag}_out", nbytes)
    pos = 0
    while pos < nbytes:
        chunk = min(io_chunk, nbytes - pos)
        yield from vm.write_file(f, pos, chunk, pid)
        pos += chunk
    yield from vm.fsync(f, pid)


class DdParallelWrite:
    """dd in parallel on every VM of one physical host."""

    def __init__(self, env: "Environment", host: "PhysicalHost",
                 nbytes: int = 600 * MB):
        self.env = env
        self.host = host
        self.nbytes = nbytes

    def start(self):
        """Launch; the returned process value is the elapsed seconds."""
        return self.env.process(self._run())

    def _run(self):
        start = self.env.now
        procs: List = [
            self.env.process(dd_writer(vm, self.nbytes)) for vm in self.host.vms
        ]
        if procs:
            yield AllOf(self.env, procs)
        return self.env.now - start
