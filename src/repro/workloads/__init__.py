"""Workloads: the paper's Hadoop benchmarks and raw-I/O microbenchmarks."""

from .ddwrite import DdParallelWrite, dd_writer
from .profiles import (
    BENCHMARKS,
    SORT,
    WORDCOUNT,
    WORDCOUNT_NO_COMBINER,
    benchmark,
)
from .sysbench import SysbenchSeqWrite, sysbench_writer

__all__ = [
    "BENCHMARKS",
    "DdParallelWrite",
    "SORT",
    "SysbenchSeqWrite",
    "WORDCOUNT",
    "WORDCOUNT_NO_COMBINER",
    "benchmark",
    "dd_writer",
    "sysbench_writer",
]
