"""Workloads: the paper's Hadoop benchmarks and raw-I/O microbenchmarks."""

from .arrivals import (
    DEFAULT_SIZE_MIX,
    ArrivalConfig,
    JobArrival,
    SizeClass,
    TraceArrival,
    generate_arrivals,
)
from .ddwrite import DdParallelWrite, dd_writer
from .profiles import (
    BENCHMARKS,
    SORT,
    WORDCOUNT,
    WORDCOUNT_NO_COMBINER,
    benchmark,
)
from .sysbench import SysbenchSeqWrite, sysbench_writer

__all__ = [
    "ArrivalConfig",
    "BENCHMARKS",
    "DEFAULT_SIZE_MIX",
    "DdParallelWrite",
    "JobArrival",
    "SORT",
    "SizeClass",
    "SysbenchSeqWrite",
    "TraceArrival",
    "WORDCOUNT",
    "WORDCOUNT_NO_COMBINER",
    "benchmark",
    "dd_writer",
    "generate_arrivals",
    "sysbench_writer",
]
