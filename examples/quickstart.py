#!/usr/bin/env python3
"""Quickstart: run one Hadoop sort job on the simulated virtual cluster
under two scheduler pairs and see why the pair matters.

    python examples/quickstart.py

Everything is simulated — the "seconds" below are simulated seconds on
a 4-host x 4-VM Xen-style testbed with one SATA disk per host.
"""

from repro.core import JobRunner
from repro.experiments.common import scaled_testbed
from repro.virt import SchedulerPair
from repro.workloads import SORT


def main() -> None:
    # A testbed like the paper's, with the dataset scaled to 1/8 so the
    # demo finishes in a few seconds of wall-clock time.
    config = scaled_testbed(SORT, scale=0.125, seeds=(0,))
    runner = JobRunner(config)

    default = SchedulerPair("cfq", "cfq")          # stock Xen + guests
    tuned = SchedulerPair("anticipatory", "cfq")   # paper's sort winner

    print("running sort under two (VMM, VM) disk-scheduler pairs...\n")
    for pair in (default, tuned):
        outcome = runner.run_uniform(pair)
        result = outcome.results[0]
        p = result.phases
        print(
            f"  {str(pair):12} {result.duration:7.1f}s  "
            f"(map {p.ph1:.1f}s | shuffle {p.ph2:.1f}s | reduce {p.ph3:.1f}s; "
            f"{result.n_maps} maps, {result.n_reducers} reducers)"
        )

    a = runner.run_uniform(default).mean_duration
    b = runner.run_uniform(tuned).mean_duration
    print(
        f"\nchoosing {tuned} instead of the default {default} "
        f"saves {100 * (1 - b / a):.1f}% — and that is before any "
        "per-phase switching (see examples/adaptive_sort.py)."
    )


if __name__ == "__main__":
    main()
