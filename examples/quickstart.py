#!/usr/bin/env python3
"""Quickstart: run one Hadoop sort job on the simulated virtual cluster
under two scheduler pairs and see why the pair matters.

    python examples/quickstart.py

Everything is simulated — the "seconds" below are simulated seconds on
a 4-host x 4-VM Xen-style testbed with one SATA disk per host.
"""

from repro.api import Scenario, simulate


def main() -> None:
    # A testbed like the paper's, with the dataset scaled to 1/8 so the
    # demo finishes in a few seconds of wall-clock time.
    default = Scenario(workload="sort", scale=0.125, pair="cc")  # stock Xen
    tuned = default.with_(pair="ac")             # paper's sort winner

    print("running sort under two (VMM, VM) disk-scheduler pairs...\n")
    durations = {}
    for scenario in (default, tuned):
        res = simulate(scenario, seed=0)
        durations[scenario.pair] = res.duration
        p = res.result.phases
        print(
            f"  {str(scenario.solution().assignments[0]):12} "
            f"{res.duration:7.1f}s  "
            f"(map {p.ph1:.1f}s | shuffle {p.ph2:.1f}s | reduce {p.ph3:.1f}s; "
            f"{res.result.n_maps} maps, {res.result.n_reducers} reducers)"
        )

    a, b = durations["cc"], durations["ac"]
    print(
        f"\nchoosing (anticipatory, cfq) instead of the default (cfq, cfq) "
        f"saves {100 * (1 - b / a):.1f}% — and that is before any "
        "per-phase switching (see examples/adaptive_sort.py)."
    )


if __name__ == "__main__":
    main()
