#!/usr/bin/env python3
"""Measure elevator switching costs with the paper's dd methodology and
fit the predictive model (the paper's §VII future-work item).

    python examples/switch_cost_survey.py
"""

from repro.core import SwitchCostMeter, SwitchCostModel
from repro.api import scaled_cluster
from repro.virt import SchedulerPair

MB = 1024 * 1024

STATES = [SchedulerPair.parse(s) for s in ("cc", "ad", "dd", "nn", "ac", "cd")]


def main() -> None:
    meter = SwitchCostMeter(
        scaled_cluster(scale=0.125, hosts=1),
        nbytes=75 * MB,  # 600 MB x 1/8 scale
        seeds=(0, 1),
    )
    print("measuring Cost_switch = T_two - (T1 + T2)/2 on parallel dd...\n")
    matrix = meter.matrix(STATES)

    labels = [p.label for p in STATES]
    print("       " + "".join(f"{l:>8}" for l in labels))
    for src in STATES:
        row = "".join(
            f"{matrix.cost(src, dst):8.2f}" for dst in STATES
        )
        print(f"  {src.label:>4} {row}")

    print(
        f"\nrange [{matrix.min_cost:.2f}, {matrix.max_cost:.2f}] s; "
        f"max asymmetry "
        f"{max(matrix.asymmetry(a, b) for a in STATES for b in STATES):.2f} s "
        "(non-commutative, as in the paper's Fig. 5)."
    )

    model = SwitchCostModel()
    rms = model.fit(matrix)
    print(
        f"\nlinear predictor fitted over {len(matrix.costs)} transitions: "
        f"RMS error {rms:.3f} s"
    )
    example = (STATES[0], STATES[3])
    print(
        f"predicted {example[0]} -> {example[1]}: "
        f"{model.predict(*example):.2f} s "
        f"(measured {matrix.cost(*example):.2f} s)"
    )


if __name__ == "__main__":
    main()
