#!/usr/bin/env python3
"""Per-phase tuning of a Pig-style job chain (sort -> sort).

A chain of K jobs has 2K phases, so the solution space is S^(2K) —
16^4 = 65,536 plans for this two-job chain with all 16 pairs.  The
heuristic explores at most P x S of them.

    python examples/job_chain.py
"""

import time

from repro.core import ChainConfig, ChainRunner, HeuristicSearch, profile_single_pairs
from repro.api import scaled_cluster, scaled_job
from repro.virt import SchedulerPair
from repro.workloads import SORT

CANDIDATES = [SchedulerPair.parse(s) for s in ("cc", "ac", "ad", "dd", "dc", "nc")]


def main() -> None:
    scale = 0.125
    config = ChainConfig(
        cluster=scaled_cluster(scale),
        jobs=(scaled_job(SORT, scale), scaled_job(SORT, scale)),
        seeds=(0,),
    )
    runner = ChainRunner(config)
    space = len(CANDIDATES) ** config.n_phases
    print(
        f"chain: sort -> sort (two-pass), {config.n_phases} phases, "
        f"{len(CANDIDATES)} candidate pairs -> S^P = {space} plans\n"
    )

    t0 = time.time()
    print("profiling the chain under each candidate pair...")
    scores = profile_single_pairs(runner, CANDIDATES)
    for pair in sorted(scores.totals, key=scores.totals.get):
        phases = "  ".join(f"{x:6.1f}" for x in scores.per_phase[pair])
        print(f"  {str(pair):12} phases [{phases}]  total {scores.totals[pair]:6.1f}s")

    print("\nrunning Algorithm 1 over the chain...")
    result = HeuristicSearch(runner, scores, CANDIDATES).search()
    best_pair, best_single = scores.best_single()
    print(f"  heuristic plan : {result.solution}")
    print(f"  heuristic time : {result.score:.1f}s")
    print(f"  best single    : {best_pair} at {best_single:.1f}s")
    print(
        f"  evaluations    : {result.evaluations + len(CANDIDATES)} job-chain "
        f"executions (vs {space} for brute force)"
    )
    print(f"  wall time      : {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
