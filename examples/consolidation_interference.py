#!/usr/bin/env python3
"""VM disk interference, the paper's motivating observation (Fig. 1):
the same sequential-write benchmark slows down super-linearly as more
VMs share one physical disk, and the (VMM, VM) elevator pair moves the
score at every consolidation level.

    python examples/consolidation_interference.py
"""

from repro.api import assemble_cluster, scaled_cluster
from repro.virt import SchedulerPair
from repro.workloads import SysbenchSeqWrite

MB = 1024 * 1024

PAIRS = [SchedulerPair.parse(s) for s in ("cc", "ad", "dd", "nn")]


def elapsed(pair: SchedulerPair, n_vms: int) -> float:
    env, cluster = assemble_cluster(
        scaled_cluster(scale=0.125, hosts=1, vms_per_host=3)
        .with_(initial_pair=pair)
    )
    bench = SysbenchSeqWrite(
        env, cluster, total_bytes=128 * MB, n_files=16, vms_per_host=n_vms
    )
    proc = bench.start()
    env.run(until=proc)
    return proc.value


def main() -> None:
    print("sysbench seqwr (128 MB x 16 files per VM), one host:\n")
    print("  pair          1 VM     2 VMs    3 VMs")
    base = {}
    for pair in PAIRS:
        times = [elapsed(pair, n) for n in (1, 2, 3)]
        base[pair] = times
        print(
            f"  {str(pair):12}"
            + "".join(f" {t:8.1f}" for t in times)
        )
    avg1 = sum(t[0] for t in base.values()) / len(base)
    avg2 = sum(t[1] for t in base.values()) / len(base)
    avg3 = sum(t[2] for t in base.values()) / len(base)
    print(
        f"\naverage slowdown vs 1 VM: x{avg2 / avg1:.1f} at 2 VMs, "
        f"x{avg3 / avg1:.1f} at 3 VMs (the paper saw x3.5 / x8.5)."
    )


if __name__ == "__main__":
    main()
