#!/usr/bin/env python3
"""The paper's full method on one workload: profile all 16 scheduler
pairs, run Algorithm 1 to assign pairs to job phases, and compare the
adaptive plan against the default (CFQ, CFQ) and the best single pair.

    python examples/adaptive_sort.py [benchmark]

where ``benchmark`` is one of: sort (default), wordcount,
wordcount-nocombiner.  Expect a few minutes of wall time — the
profiling pass alone runs the job 16 times.
"""

import sys
import time

from repro import AdaptiveMetaScheduler, benchmark
from repro.api import scaled_testbed


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sort"
    spec = benchmark(name)

    config = scaled_testbed(spec, scale=0.125, seeds=(0,))
    meta = AdaptiveMetaScheduler(config)

    print(f"profiling {name} under all 16 pairs...")
    t0 = time.time()
    scores = meta.profile()
    print(f"  done in {time.time() - t0:.0f}s wall\n")

    print("  pair           phase1   phase2    total")
    for pair in sorted(scores.totals, key=scores.totals.get):
        ph = scores.per_phase[pair]
        print(
            f"  {str(pair):12} {ph[0]:8.1f} {ph[1]:8.1f} "
            f"{scores.totals[pair]:8.1f}"
        )

    print("\nrunning Algorithm 1 (heuristic phase assignment)...")
    report = meta.report()
    print(f"\n{report.summary()}")
    print(
        f"\nheuristic evaluated {report.evaluations} job executions in "
        f"total (bounded by P x S = "
        f"{config.n_phases * 16} + the 16 profiling runs)."
    )


if __name__ == "__main__":
    main()
