"""Bench: regenerate Table I (sort matrix, paper's 3-run averaging)."""

from repro.experiments import table1_sort

from conftest import run_once


def test_table1_sort(benchmark, record, scale, seeds):
    result = run_once(benchmark, table1_sort.run, scale=scale, seeds=seeds)
    record(result)
    assert len(result.data["durations"]) == 16
    assert result.all_checks_pass
