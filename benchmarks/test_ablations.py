"""Benches: ablations of design choices + future-work extensions."""

from repro.experiments import ablations

from conftest import run_once


def test_ablation_mechanisms(benchmark, record, scale, seeds):
    result = run_once(benchmark, ablations.run_mechanisms, scale=scale,
                      seeds=seeds)
    record(result)
    assert result.data["rows"]


def test_ablation_online_controller(benchmark, record, scale, seeds):
    result = run_once(benchmark, ablations.run_online, scale=scale,
                      seeds=seeds)
    record(result)
    assert len(result.data["rows"]) == 3


def test_ablation_job_chain(benchmark, record, scale, seeds):
    result = run_once(benchmark, ablations.run_chain, scale=scale, seeds=seeds)
    record(result)
    assert result.data["evaluations"] < result.data["space"]
    assert result.checks()[0].passed


def test_ablation_phase_count(benchmark, record, scale, seeds):
    result = run_once(benchmark, ablations.run_phase_count, scale=scale,
                      seeds=seeds)
    record(result)
    assert result.data["evals"][3] <= 3 * 6 + 6  # P x S bound at P=3
