"""Bench: regenerate Fig. 6 (per-phase scores for all 16 pairs)."""

from repro.experiments import fig6_phase_scores

from conftest import run_once


def test_fig6_phase_scores(benchmark, record, scale, seeds):
    result = run_once(
        benchmark, fig6_phase_scores.run, scale=scale, seeds=seeds
    )
    record(result)
    scores = result.data["scores"]
    assert len(scores.totals) == 16
    assert result.all_checks_pass
