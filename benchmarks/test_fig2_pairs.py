"""Bench: regenerate Fig. 2 (three benchmarks x 16 pairs)."""

from repro.experiments import fig2_pairs

from conftest import run_once


def test_fig2_pairs(benchmark, record, scale, seeds):
    result = run_once(benchmark, fig2_pairs.run, scale=scale, seeds=seeds)
    record(result)
    durations = result.data["durations"]
    assert len(durations) == 3
    assert all(len(d) == 16 for d in durations.values())
    # Headline shapes must hold at the calibrated scale; one borderline
    # check (wc-nocombiner's default-vs-best tie) is tolerated — see
    # EXPERIMENTS.md "known mismatches".
    checks = result.checks()
    assert sum(c.passed for c in checks) >= len(checks) - 1
