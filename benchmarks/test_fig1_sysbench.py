"""Bench: regenerate Fig. 1 (sysbench vs pair vs consolidation)."""

from repro.experiments import fig1_sysbench

from conftest import run_once


def test_fig1_sysbench(benchmark, record, scale, seeds):
    result = run_once(
        benchmark, fig1_sysbench.run, scale=scale, seeds=seeds
    )
    record(result)
    assert result.data["times"]
    checks = result.checks()
    assert sum(c.passed for c in checks) >= len(checks) - 1
