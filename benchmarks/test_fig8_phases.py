"""Bench: regenerate Fig. 8 (phase breakdown per benchmark)."""

from repro.experiments import fig8_phases

from conftest import run_once


def test_fig8_phases(benchmark, record, scale, seeds):
    result = run_once(benchmark, fig8_phases.run, scale=scale, seeds=seeds)
    record(result)
    assert len(result.data["phases"]) == 3
    checks = result.checks()
    assert sum(c.passed for c in checks) >= 1
