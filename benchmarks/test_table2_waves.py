"""Bench: regenerate Table II (non-concurrent shuffle vs waves)."""

from repro.experiments import table2_waves

from conftest import run_once


def test_table2_waves(benchmark, record, scale, seeds):
    result = run_once(benchmark, table2_waves.run, scale=scale, seeds=seeds)
    record(result)
    assert len(result.data["pct"]) == len(table2_waves.DEFAULT_WAVES)
    checks = result.checks()
    assert checks[0].passed  # shrinking share is the headline
