"""Bench: regenerate Fig. 4 (per-point performance, oracle bound)."""

from repro.experiments import fig4_points

from conftest import run_once


def test_fig4_points(benchmark, record, scale, seeds):
    result = run_once(benchmark, fig4_points.run, scale=scale, seeds=seeds)
    record(result)
    assert result.data["points"]
    checks = result.checks()
    assert sum(c.passed for c in checks) >= len(checks) - 1
