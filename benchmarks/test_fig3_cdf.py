"""Bench: regenerate Fig. 3 (throughput CDFs, (CFQ,CFQ) vs (AS,DL))."""

from repro.experiments import fig3_cdf

from conftest import run_once


def test_fig3_cdf(benchmark, record, scale, seeds):
    result = run_once(benchmark, fig3_cdf.run, scale=scale, seeds=seeds)
    record(result)
    for level in ("dom0", "vm"):
        for cdf in result.data[level].values():
            assert len(cdf) > 0
    checks = result.checks()
    assert sum(c.passed for c in checks) >= 2
