"""Benchmark harness glue.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round — a full parameter sweep is not a microbenchmark to be repeated),
prints the paper-style table/series plus the PASS/FAIL shape checks,
and writes the same text under ``benchmarks/results/``.

Environment knobs:

* ``REPRO_SCALE`` — data-size scale (default 0.25; 1.0 = paper-exact).
* ``REPRO_BENCH_SEEDS`` — comma-separated seeds (default "0").
"""

import os
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_seeds():
    raw = os.environ.get("REPRO_BENCH_SEEDS", "0")
    return tuple(int(s) for s in raw.split(",") if s != "")


@pytest.fixture(scope="session")
def seeds():
    return bench_seeds()


@pytest.fixture(scope="session")
def scale():
    from repro.api import DEFAULT_SCALE

    return DEFAULT_SCALE


@pytest.fixture
def record(capsys):
    """Print and persist an ExperimentResult; returns the rendered text."""

    def _record(result):
        text = result.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")
        return text

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
