"""Bench: regenerate Fig. 5 (switch-cost matrix on parallel dd).

Uses the representative 6-state subset by default (36 transitions);
set REPRO_FIG5_FULL=1 for the complete 16x16 grid.
"""

import os

from repro.experiments import fig5_switchcost

from conftest import run_once


def test_fig5_switchcost(benchmark, record, scale, seeds):
    full = os.environ.get("REPRO_FIG5_FULL", "0") == "1"
    result = run_once(
        benchmark, fig5_switchcost.run, scale=scale, seeds=seeds, full=full
    )
    record(result)
    matrix = result.data["matrix"]
    n = len(result.data["states"])
    assert len(matrix.costs) == n * n
    checks = result.checks()
    assert sum(c.passed for c in checks) >= 2
