"""Bench: regenerate Fig. 7 (adaptive meta-scheduler, four panels)."""

from repro.experiments import fig7_adaptive

from conftest import run_once


def _assert_adaptive_shapes(result):
    reports = result.data["reports"]
    assert reports
    for rep in reports.values():
        # The headline: adaptive never loses to the default pair.
        assert rep.gain_vs_default > -0.02


def test_fig7a_workloads(benchmark, record, scale, seeds):
    result = run_once(
        benchmark, fig7_adaptive.run_workloads, scale=scale, seeds=seeds
    )
    record(result)
    assert len(result.data["reports"]) == 3
    _assert_adaptive_shapes(result)


def test_fig7b_consolidation(benchmark, record, scale, seeds):
    result = run_once(
        benchmark, fig7_adaptive.run_consolidation, scale=scale, seeds=seeds
    )
    record(result)
    assert len(result.data["reports"]) == 3
    _assert_adaptive_shapes(result)


def test_fig7c_datasize(benchmark, record, scale, seeds):
    result = run_once(
        benchmark, fig7_adaptive.run_datasize, scale=scale, seeds=seeds
    )
    record(result)
    assert len(result.data["reports"]) == 4
    _assert_adaptive_shapes(result)


def test_fig7d_cluster_scale(benchmark, record, scale, seeds):
    result = run_once(
        benchmark, fig7_adaptive.run_cluster_scale, scale=scale, seeds=seeds
    )
    record(result)
    assert len(result.data["reports"]) == 4
    _assert_adaptive_shapes(result)
